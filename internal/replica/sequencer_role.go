package replica

import (
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// heldRequest is a request whose sequencing is postponed while a takeover's
// GSNQuery round is in flight.
type heldRequest struct {
	from node.ID
	req  consistency.Request
}

// onPrimaryView reacts to primary-group membership changes: sequencer
// (leader) takeover and lazy-publisher designation. The rules are
// deterministic over the view so every member converges without extra
// agreement rounds: the leader is the lowest live member; the publisher is
// the lowest live non-leader member (or the leader itself in a singleton
// view).
func (g *Gateway) onPrimaryView(v group.View) {
	self := g.ctx.ID()

	if v.Leader == self {
		if !g.isLeader {
			g.becomeSequencer()
		}
	} else if g.isLeader {
		// Deposed (e.g. a heal revealed a lower-ID member): stop
		// sequencing; the rightful leader announces itself.
		g.isLeader = false
		g.seqReady = false
	}
	if v.Leader != "" {
		g.sequencerID = v.Leader
	}

	publisher := v.Leader
	for _, m := range v.Members {
		if m != v.Leader {
			publisher = m
			break
		}
	}
	if publisher == self && !g.isPublisher {
		g.isPublisher = true
		g.lastLazyAt = g.ctx.Now()
		g.updatesSinceLazy = 0
		g.scheduleLazyTick()
	} else if publisher != self {
		g.isPublisher = false
	}
}

// becomeSequencer starts a takeover: a GSNQuery round over the live
// primaries so assignments resume above every GSN any survivor has seen.
// The round always runs — a process cannot distinguish the deployment's
// first boot from its own restart, and a restarted sequencer that skipped
// the round would reissue GSNs from zero. It completes as soon as every
// queried peer reports (a few network round trips at first boot) or at the
// takeover timeout.
func (g *Gateway) becomeSequencer() {
	g.isLeader = true
	if g.seqState == nil {
		g.seqState = consistency.NewSequencerState(0)
	}

	g.epoch++
	g.seqReady = false
	g.orderTracker = nil // fresh ack quorum per sequencer era
	g.takeoverMax = g.commit.MyGSN()
	g.takeoverReported = nil
	peers := g.livePrimaryPeers()
	await := len(peers)
	if g.cfg.ReplicatedAssign {
		// Safety requires reports from a genuine majority of the full
		// primary group (self included): that set intersects the ack quorum
		// behind every released floor, so the report merge re-covers
		// everything the application could have observed. The requirement
		// does not shrink when peers are down — proceeding with fewer
		// reports than majority-1 would void the intersection argument and
		// let assignments vanish behind a released floor. With too few live
		// peers the takeover waits, re-querying on the timeout and chase
		// ticks until enough members recover (the fault schedules repair
		// every crash, so this blocks only while a majority is genuinely
		// unreachable — exactly when resuming would be unsafe).
		await = len(g.cfg.PrimaryGroup) / 2
	}
	if await == 0 {
		g.finishTakeover()
		return
	}
	g.takeoverAwait = await
	epoch := g.epoch
	for _, id := range peers {
		g.stack.Send(id, consistency.GSNQuery{Epoch: epoch})
	}
	if g.takeoverDone != nil {
		g.takeoverDone()
	}
	var onTimeout func()
	onTimeout = func() {
		if !g.isLeader || g.seqReady || epoch != g.epoch {
			return
		}
		if g.cfg.ReplicatedAssign && g.takeoverAwait > 0 {
			// Short of a majority: re-query whoever is reachable and keep
			// waiting. Never finish below quorum.
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, consistency.GSNQuery{Epoch: epoch})
			}
			g.takeoverDone = g.ctx.SetTimer(g.cfg.TakeoverTimeout, onTimeout)
			return
		}
		g.finishTakeover()
	}
	g.takeoverDone = g.ctx.SetTimer(g.cfg.TakeoverTimeout, onTimeout)
}

func (g *Gateway) onGSNReport(from node.ID, r consistency.GSNReport) {
	if !g.isLeader || r.Epoch != g.epoch {
		return
	}
	// Merge the survivor's assignment table before anything else: every
	// released assignment is held by a majority, and this round reaches
	// one, so the merged memo re-covers it (chases then re-issue original
	// numbers instead of re-sequencing).
	g.mergeReportAssigns(r.Assigns)
	if g.seqReady {
		// Late report (its link was recovering during the round): fold it
		// in — Resume is monotone, so this can only correct a takeover
		// that undershot, and a state sync closes the history gap.
		if r.GSN > g.seqState.GSN() {
			g.seqState.Resume(r.GSN)
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, consistency.SyncRequest{})
			}
		}
		return
	}
	if r.GSN > g.takeoverMax {
		g.takeoverMax = r.GSN
	}
	if g.takeoverReported[from] {
		return // duplicate (a re-queried peer answers again): one vote each
	}
	if g.takeoverReported == nil {
		g.takeoverReported = make(map[node.ID]bool)
	}
	g.takeoverReported[from] = true
	g.takeoverAwait--
	if g.takeoverAwait <= 0 {
		if g.takeoverDone != nil {
			g.takeoverDone()
		}
		g.finishTakeover()
	}
}

func (g *Gateway) finishTakeover() {
	g.seqState.Resume(g.takeoverMax)
	g.seqReady = true
	g.ctx.Logf("replica: sequencer takeover complete at GSN %d", g.seqState.GSN())

	// A restarted (or long-partitioned) leader may be behind the history it
	// now sequences: recover state from the surviving primaries.
	if g.commit.MyCSN() < g.takeoverMax {
		for _, id := range g.livePrimaryPeers() {
			g.stack.Send(id, consistency.SyncRequest{})
		}
	}

	// Tell every replica and client who sequences now.
	ann := consistency.SequencerAnnounce{Sequencer: g.ctx.ID()}
	for _, id := range g.replicaTargets() {
		g.stack.Send(id, ann)
	}
	for _, id := range g.cfg.Clients {
		g.stack.Send(id, ann)
	}

	held := g.heldRequests
	g.heldRequests = nil
	for _, h := range held {
		g.sequence(h.from, h.req)
	}
	// Fold the new leader's own assignment frontier into the fresh-era
	// tracker so the floor resumes rising without waiting for traffic.
	g.maybeAckAssigns()
}

func (g *Gateway) livePrimaryPeers() []node.ID {
	v, ok := g.stack.ViewOf(PrimaryGroupName)
	if !ok {
		return g.otherPrimaries()
	}
	var out []node.ID
	for _, id := range v.Members {
		if id != g.ctx.ID() {
			out = append(out, id)
		}
	}
	return out
}

// sequence performs the sequencer's part of request processing
// (Sections 4.1.1 and 4.1.2).
func (g *Gateway) sequence(from node.ID, req consistency.Request) {
	if !g.seqReady {
		g.heldRequests = append(g.heldRequests, heldRequest{from: from, req: req})
		return
	}
	if g.cfg.AssignBatch > 1 {
		g.batchRequest(req)
		return
	}
	// Fold any GSN evidence the commit stream has seen (assignments from a
	// previous sequencer era) into the counter before using it: assigning a
	// number the group already committed would be dropped as a duplicate.
	g.seqState.Resume(g.commit.MyGSN())
	if req.ReadOnly {
		// Broadcast the current GSN, without advancing it, to the primary
		// and secondary replicas.
		g.ins.readSnapshots.Inc()
		gsn := g.seqState.SnapshotRead(req.ID)
		assign := consistency.GSNAssign{ID: req.ID, GSN: gsn}
		if d := g.pipelineDelay(1); d > 0 {
			g.ctx.Post(d, func() { g.broadcastReadAssign(assign) })
			return
		}
		g.broadcastReadAssign(assign)
		return
	}
	// Advance the GSN and broadcast the assignment to the other primaries.
	// A retransmission of a request some previous sequencer already
	// numbered keeps its original GSN: re-sequencing would let replicas
	// apply it at different positions.
	gsn, seen := g.observedAssigns[req.ID]
	if !seen {
		gsn = g.seqState.AssignUpdate(req.ID)
		g.ins.gsnAssigned.Inc()
	}
	assign := consistency.GSNAssign{ID: req.ID, GSN: gsn, Update: true}
	if d := g.pipelineDelay(1); d > 0 {
		g.ctx.Post(d, func() { g.broadcastUpdateAssign(assign) })
		return
	}
	g.broadcastUpdateAssign(assign)
}

// broadcastReadAssign sends a read-snapshot assignment to every replica and
// feeds the local read pipeline (needed when this node also serves as the
// lone surviving primary; otherwise a bounded memo).
func (g *Gateway) broadcastReadAssign(a consistency.GSNAssign) {
	for _, id := range g.replicaTargets() {
		g.stack.Send(id, a)
	}
	g.onAssign(a)
}

// broadcastUpdateAssign sends an update assignment to the other primaries.
// The sequencer also tracks commits locally (it never replies, but its
// state must stay current so a later takeover by another member — or a
// failback — never regresses, and so its own GSNReports are accurate).
func (g *Gateway) broadcastUpdateAssign(a consistency.GSNAssign) {
	for _, id := range g.otherPrimaries() {
		g.stack.Send(id, a)
	}
	g.onAssign(a)
}

// pipelineDelay models the ordering pipeline's occupancy for a broadcast
// covering n requests: work items cost SeqCostBase + n*SeqCostPerReq and
// queue behind whatever the pipeline is already processing. It returns the
// delay from now until this broadcast leaves, advancing the occupancy
// horizon; 0 when the cost model is disabled.
func (g *Gateway) pipelineDelay(n int) time.Duration {
	cost := g.cfg.SeqCostBase + time.Duration(n)*g.cfg.SeqCostPerReq
	if cost <= 0 {
		return 0
	}
	start := g.ctx.Now()
	if g.seqBusyUntil.After(start) {
		start = g.seqBusyUntil
	}
	g.seqBusyUntil = start.Add(cost)
	return g.seqBusyUntil.Sub(g.ctx.Now())
}

// batchRequest adds a request to the accumulating assignment window,
// flushing a full window immediately and arming the window timer otherwise.
func (g *Gateway) batchRequest(req consistency.Request) {
	if req.ReadOnly {
		g.batchReads = append(g.batchReads, req.ID)
	} else {
		g.batchUpdates = append(g.batchUpdates, req.ID)
	}
	if len(g.batchUpdates)+len(g.batchReads) >= g.cfg.AssignBatch {
		g.flushAssignBatch()
		return
	}
	if !g.batchFlushArmed {
		g.batchFlushArmed = true
		g.ctx.Post(g.cfg.AssignBatchWindow, g.batchFlushFn)
	}
}

// flushAssignBatch assigns the pending window and broadcasts it as one
// GSNAssignBatch: a contiguous GSN range for the fresh updates, one shared
// snapshot at the post-update frontier for the reads. Requests the memo
// already numbered (retransmissions, chase re-issues) are re-broadcast as
// singleton GSNAssigns so they keep their original positions.
func (g *Gateway) flushAssignBatch() {
	if len(g.batchUpdates)+len(g.batchReads) == 0 {
		return
	}
	if !g.isLeader || !g.seqReady || g.wedged {
		// Deposed mid-window (or fail-stopped): drop the batch. The replicas
		// holding these requests chase the new sequencer with GSNRequests.
		g.batchUpdates = g.batchUpdates[:0]
		g.batchReads = g.batchReads[:0]
		return
	}
	g.seqState.Resume(g.commit.MyGSN())

	// Partition updates: cross-era duplicates re-issue their observed GSN;
	// the rest go to the sequencer state, which filters its own memo.
	var dups []consistency.GSNAssign
	candidates := g.batchFresh[:0]
	for _, id := range g.batchUpdates {
		if gsn, seen := g.observedAssigns[id]; seen {
			dups = append(dups, consistency.GSNAssign{ID: id, GSN: gsn, Update: true})
			continue
		}
		candidates = append(candidates, id)
	}
	g.batchFresh = candidates
	first, fresh, memoDups := g.seqState.AssignUpdateBatch(candidates)
	dups = append(dups, memoDups...) // copies out of the sequencer's scratch
	for range fresh {
		g.ins.gsnAssigned.Inc()
	}

	// Snapshot every read at the window frontier; a read memoized in an
	// earlier window keeps its original (lower) snapshot as a singleton.
	frontier := g.seqState.GSN()
	var reads []consistency.RequestID
	for _, id := range g.batchReads {
		g.ins.readSnapshots.Inc()
		if gsn := g.seqState.SnapshotRead(id); gsn != frontier {
			dups = append(dups, consistency.GSNAssign{ID: id, GSN: gsn})
			continue
		}
		reads = append(reads, id)
	}

	n := len(g.batchUpdates) + len(g.batchReads)
	g.assignFlushes++
	g.assignFlushedReqs += uint64(n)
	g.ins.assignBatchHist.Observe(float64(n))
	g.batchUpdates = g.batchUpdates[:0]
	g.batchReads = g.batchReads[:0]

	// The message owns fresh copies: on the in-memory runtime receivers
	// share the slices, and the sequencer's scratch is reused next flush.
	batch := consistency.GSNAssignBatch{
		First:   first,
		Updates: append([]consistency.RequestID(nil), fresh...),
		ReadGSN: frontier,
		Reads:   reads,
	}
	send := func() {
		if len(batch.Updates) > 0 || len(batch.Reads) > 0 {
			// Windows carrying read snapshots go to every replica (the
			// secondaries need ReadGSN); update-only windows concern the
			// primary group alone, matching the singleton routing.
			targets := g.otherPrimaries()
			if len(batch.Reads) > 0 {
				targets = g.replicaTargets()
			}
			for _, id := range targets {
				g.stack.Send(id, batch)
			}
			g.onAssignBatch(batch)
		}
		for _, a := range dups {
			if a.Update {
				g.broadcastUpdateAssign(a)
			} else {
				g.broadcastReadAssign(a)
			}
		}
	}
	if d := g.pipelineDelay(n); d > 0 {
		g.ctx.Post(d, send)
		return
	}
	send()
}

// onGSNRequest services a chase: a replica holds a request whose assignment
// never arrived (typically lost with a crashed sequencer).
func (g *Gateway) onGSNRequest(from node.ID, r consistency.GSNRequest) {
	if !g.isLeader {
		// Not the sequencer: forward the chase to whoever we believe is.
		if g.sequencerID != g.ctx.ID() && g.sequencerID != "" && from != g.sequencerID {
			g.stack.Send(g.sequencerID, r)
		}
		return
	}
	if !g.seqReady {
		g.heldRequests = append(g.heldRequests, heldRequest{
			from: from,
			req:  consistency.Request{ID: r.ID, ReadOnly: !r.Update},
		})
		return
	}
	// Chase responses traverse the same ordering pipeline as first-time
	// assignments: without the cost accounting they would bypass the model
	// entirely, and an overloaded sequencer would answer chases faster than
	// it assigns — recovery traffic outrunning the pipeline it is chasing.
	if r.Update {
		gsn, seen := g.observedAssigns[r.ID]
		if !seen {
			gsn = g.seqState.AssignUpdate(r.ID)
		}
		assign := consistency.GSNAssign{ID: r.ID, GSN: gsn, Update: true}
		if d := g.pipelineDelay(1); d > 0 {
			g.ctx.Post(d, func() { g.broadcastUpdateAssign(assign) })
			return
		}
		g.broadcastUpdateAssign(assign)
		return
	}
	gsn := g.seqState.SnapshotRead(r.ID)
	assign := consistency.GSNAssign{ID: r.ID, GSN: gsn}
	if d := g.pipelineDelay(1); d > 0 {
		g.ctx.Post(d, func() { g.stack.Send(from, assign) })
		return
	}
	g.stack.Send(from, assign)
}

// maxChasePerTick bounds recovery traffic per chase tick. Chases exist to
// recover the rare assignment lost with a crashed sequencer; under heavy
// traffic a saturated ordering pipeline can leave tens of thousands of
// requests legitimately waiting, and chasing every one of them each tick
// turns overload into a recovery storm that amplifies itself (each update
// chase triggers a re-broadcast to every primary). The bound keeps recovery
// bandwidth constant; anything beyond it is chased on later ticks, so
// liveness is unaffected.
const maxChasePerTick = 128

// chaseTick periodically re-requests GSN assignments for requests that have
// been buffered longer than the chase interval.
func (g *Gateway) chaseTick() {
	if g.wedged {
		return // fail-stopped: go silent, and stop re-arming the tick
	}
	cutoff := g.ctx.Now().Add(-g.cfg.ChaseInterval)
	if !g.isLeader && g.sequencerID != g.ctx.ID() && g.sequencerID != "" {
		budget := maxChasePerTick
		for _, id := range g.reads.AwaitingGSN(cutoff) {
			if budget == 0 {
				break
			}
			budget--
			g.stack.Send(g.sequencerID, consistency.GSNRequest{ID: id})
		}
		for _, id := range g.commit.PendingBodies() {
			if budget == 0 {
				break
			}
			if at, ok := g.bodyArrived[id]; ok && at.Before(cutoff) {
				budget--
				g.stack.Send(g.sequencerID, consistency.GSNRequest{ID: id, Update: true})
			}
		}
	}
	// Track commit-stream progress for stuck detection.
	now := g.ctx.Now()
	if csn := g.commit.MyCSN(); csn != g.lastCSN {
		g.lastCSN = csn
		g.lastCSNAt = now
	}
	// Pull a snapshot when this replica has missed history: a large gap
	// (it restarted or rejoined after a partition), or a stream that is
	// ahead-but-stuck — a hole whose body and assignment both died with a
	// crashed sequencer, which no per-request chase can fill.
	stuck := g.commit.Staleness() > 0 && now.Sub(g.lastCSNAt) > 2*g.cfg.ChaseInterval
	if g.commit.Staleness() > g.cfg.RecoveryGap || stuck {
		if g.isLeader {
			// A leader heals from its peers (any primary answers).
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, consistency.SyncRequest{})
			}
		} else if g.sequencerID != g.ctx.ID() && g.sequencerID != "" {
			g.stack.Send(g.sequencerID, consistency.SyncRequest{})
		}
	}
	// A leader also re-queries peers periodically until it has heard from
	// everyone it still awaits: takeover rounds can complete on the timeout
	// while a recovering peer's higher GSN is still in flight, and a
	// replicated-assign takeover blocked below quorum needs the queries to
	// reach peers as they come back.
	if g.isLeader && g.takeoverAwait > 0 {
		for _, id := range g.livePrimaryPeers() {
			g.stack.Send(id, consistency.GSNQuery{Epoch: g.epoch})
		}
	}
	// Replicated assignment: re-send the current frontier each tick (acks
	// ride an unreliable path — a lost ack must not stall the floor), and
	// the leader re-evaluates its own frontier's contribution and
	// retransmits the current floor (a lost OrderCommit must not leave
	// followers holding fully-assigned commits below it forever — floors
	// are only otherwise sent when they rise).
	if g.cfg.ReplicatedAssign && g.cfg.Primary {
		if g.isLeader {
			g.maybeAckAssigns()
			if g.seqReady && g.lastFloor > 0 {
				oc := consistency.OrderCommit{Epoch: g.epoch, Floor: g.lastFloor}
				for _, id := range g.otherPrimaries() {
					g.stack.Send(id, oc)
				}
			}
		} else {
			g.walLogAssigns()
			if f := g.ackableFrontier(); f > 0 {
				g.lastAckedFrontier = f
				g.sendAssignAck(f)
			}
		}
	}
	// Anti-entropy beacon: the sequencer publishes its state digest so a
	// primary that diverged inside a re-sequencing window detects it and
	// resynchronizes.
	if g.isLeader && g.seqReady && !g.busy {
		if h, ok := g.stateHash(); ok {
			d := consistency.DigestAnnounce{Applied: g.applied, Hash: h}
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, d)
			}
		}
	}
	// Assignments stuck without bodies stall the commit stream; recover
	// the bodies from peer primaries (any role does this, leader included).
	if g.cfg.Primary {
		budget := maxChasePerTick
		for _, id := range g.commit.PendingAssignments() {
			if budget == 0 {
				break
			}
			budget--
			for _, peer := range g.otherPrimaries() {
				g.stack.Send(peer, consistency.BodyRequest{ID: id})
			}
		}
	}
	g.ctx.Post(g.cfg.ChaseInterval, g.chaseFn)
}

// lonePrimary reports whether this node is the only live member of the
// primary group — the degenerate case where the sequencer must also serve.
func (g *Gateway) lonePrimary() bool {
	v, ok := g.stack.ViewOf(PrimaryGroupName)
	return ok && len(v.Members) == 1 && v.Leader == g.ctx.ID()
}
