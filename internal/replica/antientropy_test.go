package replica

import (
	"testing"
	"time"

	"aqua/internal/consistency"
)

func TestDedupReassignedUpdateAppliesOnce(t *testing.T) {
	// A client retransmission that received a second GSN (sequencer
	// failover lost the memo) must not apply twice: the second commit is a
	// reply-only no-op.
	tb := newTestbed(50, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(500 * ms)

	// Forge a duplicate assignment+body pair under a fresh GSN, as a
	// post-failover sequencer would issue for the retransmitted request.
	p1 := tb.replicas["p1"]
	tb.s.After(0, func() {
		p1.onRequest("cli", req(1, false, "Set", "a=1", 0))          // retransmitted body
		p1.onAssign(consistency.GSNAssign{ID: consistency.RequestID{ // re-sequenced
			Client: "cli", Seq: 1}, GSN: 2, Update: true})
	})
	tb.s.RunFor(time.Second)

	if got := p1.Applied(); got != 2 {
		t.Fatalf("applied position = %d, want 2 (dup consumed the GSN)", got)
	}
	v, _ := p1.App().Read("Version", nil)
	if string(v) != "v1" {
		t.Fatalf("version = %s, want v1 (logical update applied once)", v)
	}
}

func TestObservedAssignMemoPreventsReassignment(t *testing.T) {
	// After a failover, the new sequencer re-issues the ORIGINAL GSN for a
	// retransmitted update it observed being assigned, instead of a fresh
	// number.
	tb := newTestbed(51, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.update(2, "b=2")
	tb.s.RunFor(500 * ms)

	tb.rt.Crash("p0")
	tb.s.RunFor(5 * time.Second) // p1 takes over at GSN 2

	// The client retransmits update 1 (suppose its reply was lost).
	tb.update(1, "a=1")
	tb.s.RunFor(time.Second)

	p1 := tb.replicas["p1"]
	if got := p1.seqState.GSN(); got != 2 {
		t.Fatalf("sequencer GSN = %d, want 2 (no fresh number for a known request)", got)
	}
	if got := tb.replicas["p2"].Applied(); got != 2 {
		t.Fatalf("p2 applied = %d, want 2", got)
	}
}

func TestDigestAntiEntropyRepairsDivergence(t *testing.T) {
	// Force artificial divergence at the same position on p2; the
	// sequencer's digest beacon must detect and repair it within a few
	// chase intervals.
	tb := newTestbed(52, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(500 * ms)

	p2 := tb.replicas["p2"]
	tb.s.After(0, func() {
		// Corrupt p2's state without moving its position.
		if _, err := p2.App().ApplyUpdate("Set", []byte("a=corrupted")); err != nil {
			t.Error(err)
		}
		if _, err := p2.App().ApplyUpdate("Del", []byte("ghost")); err != nil {
			t.Error(err)
		}
	})
	tb.s.RunFor(3 * time.Second) // several digest beacons

	v, _ := p2.App().Read("Get", []byte("a"))
	if string(v) != "1" {
		t.Fatalf("anti-entropy did not repair p2: a=%q", v)
	}
	snapSeq, _ := tb.replicas["p0"].App().Snapshot()
	snapP2, _ := p2.App().Snapshot()
	if string(snapSeq) != string(snapP2) {
		t.Fatal("p2 still diverges from the sequencer")
	}
}

func TestStateUpdateEqualCSNRepairs(t *testing.T) {
	tb := newTestbed(53, 50*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(500 * ms)

	s1 := tb.replicas["s1"]
	// Push a divergent state at the same CSN directly; equal-CSN restores
	// with differing bytes must be applied.
	divergent, _ := tb.replicas["p1"].App().Snapshot()
	tb.s.After(0, func() {
		s1.App().ApplyUpdate("Set", []byte("x=junk"))
		s1.onStateUpdate(consistency.StateUpdate{CSN: s1.CSN(), Snapshot: divergent})
	})
	tb.s.RunFor(200 * ms)
	got, _ := s1.App().Read("Get", []byte("x"))
	if len(got) != 0 {
		t.Fatalf("equal-CSN corrective restore not applied: x=%q", got)
	}
}

func TestSequencerNeverReassignsBelowObservedHistory(t *testing.T) {
	// A sequencer whose counter lags evidence in its commit stream folds
	// that evidence in before assigning.
	tb := newTestbed(54, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)

	p0 := tb.replicas["p0"]
	tb.s.After(0, func() {
		// Simulate history evidence arriving out-of-band: an assignment
		// from a prior era at GSN 40.
		p0.commit.ObserveGSN(40)
	})
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(time.Second)
	if got := p0.seqState.GSN(); got != 41 {
		t.Fatalf("new assignment GSN = %d, want 41 (above observed history)", got)
	}
}
