package replica

import (
	"aqua/internal/consistency"
	"aqua/internal/node"
)

// Replicated GSN assignment (DESIGN.md §14). Followers acknowledge their
// contiguous assignment frontier to the sequencer (AssignAck); the
// sequencer folds the acks into an OrderTracker and broadcasts the majority
// floor (OrderCommit); commit buffers release only up to the floor. A
// released commit's assignment is therefore held by a majority of the
// primary group, every takeover quorum intersects that majority, and the
// takeover's GSNReport merge re-learns it — sequencer death leaves no
// assignment hole behind anything the application observed.

// maybeAckAssigns runs after any event that can extend this primary's
// contiguous assignment frontier: fold it into the leader's tracker
// directly (when sequencing) or acknowledge it to the sequencer. An ack is
// a durable promise — on a durable replica the assignments are WAL-logged
// first and the acked frontier never exceeds what the log holds, so the
// frontier survives this node's own crash-recovery (the takeover-quorum
// intersection argument needs acks that outlive their acker's incarnation,
// not just its era).
func (g *Gateway) maybeAckAssigns() {
	if !g.cfg.ReplicatedAssign || !g.cfg.Primary || g.wedged {
		return
	}
	g.walLogAssigns()
	f := g.ackableFrontier()
	if g.isLeader {
		g.orderObserve(g.ctx.ID(), f)
		return
	}
	if f <= g.lastAckedFrontier {
		return
	}
	g.lastAckedFrontier = f
	g.sendAssignAck(f)
}

func (g *Gateway) sendAssignAck(f uint64) {
	if g.sequencerID == "" || g.sequencerID == g.ctx.ID() {
		return
	}
	g.stack.Send(g.sequencerID, consistency.AssignAck{Epoch: g.epoch, Frontier: f})
}

// onAssignAck folds a follower's acknowledged frontier (leader only).
func (g *Gateway) onAssignAck(from node.ID, a consistency.AssignAck) {
	if !g.isLeader || !g.cfg.ReplicatedAssign {
		return
	}
	g.orderObserve(from, a.Frontier)
}

// orderObserve updates one member's acked frontier and re-evaluates the
// majority floor. The tracker is created lazily per sequencer era.
func (g *Gateway) orderObserve(peer node.ID, frontier uint64) {
	if g.orderTracker == nil {
		g.orderTracker = consistency.NewOrderTracker(len(g.cfg.PrimaryGroup))
	}
	g.orderTracker.Observe(peer, frontier)
	g.maybeOrderCommit()
}

// maybeOrderCommit recomputes the majority floor and, when it rises,
// broadcasts the release and drains the leader's own buffer up to it.
// lastFloor survives role changes, so a re-elected leader never broadcasts
// a floor below one the group already released.
func (g *Gateway) maybeOrderCommit() {
	if g.orderTracker == nil {
		return
	}
	floor := g.orderTracker.Floor(g.ackableFrontier())
	if floor <= g.lastFloor {
		return
	}
	g.lastFloor = floor
	g.orderCommitsSent++
	g.ins.orderCommits.Inc()
	oc := consistency.OrderCommit{Epoch: g.epoch, Floor: floor}
	for _, id := range g.otherPrimaries() {
		g.stack.Send(id, oc)
	}
	g.enqueueCommits(g.commit.SetCeiling(floor))
}

// OrderCommits reports how many majority-floor broadcasts this gateway has
// issued as sequencer — tests assert the replicated ordering actually
// engaged rather than passing vacuously.
func (g *Gateway) OrderCommits() uint64 { return g.orderCommitsSent }

// onOrderCommit raises the local release ceiling to the majority floor and
// drains whatever becomes releasable.
func (g *Gateway) onOrderCommit(oc consistency.OrderCommit) {
	if !g.cfg.ReplicatedAssign || !g.cfg.Primary {
		return
	}
	if oc.Floor > g.lastFloor {
		g.lastFloor = oc.Floor
	}
	g.enqueueCommits(g.commit.SetCeiling(oc.Floor))
}

// buildGSNReport answers a takeover GSNQuery. Under replicated assignment
// the report additionally carries the recent assignment memo, so the new
// sequencer merges every survivor's table before it resumes assigning.
func (g *Gateway) buildGSNReport(epoch uint64) consistency.GSNReport {
	r := consistency.GSNReport{Epoch: epoch, GSN: g.commit.MyGSN()}
	if g.cfg.ReplicatedAssign && g.cfg.Primary {
		const maxReport = 1024
		ids := g.observedAssignsOrder
		if len(ids) > maxReport {
			ids = ids[len(ids)-maxReport:]
		}
		for _, id := range ids {
			r.Assigns = append(r.Assigns, consistency.GSNAssign{
				ID: id, GSN: g.observedAssigns[id], Update: true,
			})
		}
	}
	return r
}

// mergeReportAssigns folds a survivor's assignment table into the new
// sequencer's memo and commit buffer during takeover.
func (g *Gateway) mergeReportAssigns(assigns []consistency.GSNAssign) {
	if !g.cfg.ReplicatedAssign {
		return
	}
	for _, a := range assigns {
		g.observeAssign(a.ID, a.GSN)
		g.enqueueCommits(g.commit.AddAssign(a))
	}
	g.maybeAckAssigns()
}
