package replica

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
)

const ms = time.Millisecond

// probe is a scripted client-side endpoint with its own substrate stack.
type probe struct {
	stack   *group.Stack
	ctx     node.Context
	replies []consistency.Reply
	perfs   []consistency.PerfBroadcast
	other   []node.Message
	onInit  func(p *probe)
}

func (p *probe) Init(ctx node.Context) {
	p.ctx = ctx
	cfg := group.DefaultConfig()
	cfg.HeartbeatInterval = 0
	p.stack = group.NewStack(ctx, cfg, func(from node.ID, m node.Message) {
		switch msg := m.(type) {
		case consistency.Reply:
			p.replies = append(p.replies, msg)
		case consistency.PerfBroadcast:
			p.perfs = append(p.perfs, msg)
		default:
			p.other = append(p.other, m)
		}
	})
	if p.onInit != nil {
		p.onInit(p)
	}
}

func (p *probe) Recv(from node.ID, m node.Message) { p.stack.Handle(from, m) }

func (p *probe) send(to node.ID, m node.Message) { p.stack.Send(to, m) }

// testbed builds sequencer p0 + primaries p1,p2 + secondaries s1,s2 and one
// probe client "cli".
type testbed struct {
	s        *sim.Scheduler
	rt       *sim.Runtime
	replicas map[node.ID]*Gateway
	cli      *probe
}

func newTestbed(seed int64, lazy time.Duration, delay DelayModel) *testbed {
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(ms)))
	tb := &testbed{s: s, rt: rt, replicas: make(map[node.ID]*Gateway), cli: &probe{}}

	primGroup := []node.ID{"p0", "p1", "p2"}
	secs := []node.ID{"s1", "s2"}
	mk := func(primary bool) *Gateway {
		return New(Config{
			Primary:      primary,
			PrimaryGroup: primGroup,
			Secondaries:  secs,
			Clients:      []node.ID{"cli"},
			Group:        group.DefaultConfig(),
			LazyInterval: lazy,
			ServiceDelay: delay,
			App:          apps.NewKVStore(),
		})
	}
	for _, id := range primGroup {
		g := mk(true)
		tb.replicas[id] = g
		rt.Register(id, g)
	}
	for _, id := range secs {
		g := mk(false)
		tb.replicas[id] = g
		rt.Register(id, g)
	}
	rt.Register("cli", tb.cli)
	return tb
}

func req(seq uint64, readOnly bool, method, payload string, staleness int) consistency.Request {
	return consistency.Request{
		ID:        consistency.RequestID{Client: "cli", Seq: seq},
		Method:    method,
		Payload:   []byte(payload),
		ReadOnly:  readOnly,
		Staleness: staleness,
	}
}

// update multicasts an update to the primary group, as a client would.
func (tb *testbed) update(seq uint64, payload string) {
	for _, id := range []node.ID{"p0", "p1", "p2"} {
		tb.cli.send(id, req(seq, false, "Set", payload, 0))
	}
}

// read sends a read to the given replicas plus the sequencer.
func (tb *testbed) read(seq uint64, staleness int, to ...node.ID) {
	r := req(seq, true, "Get", "k", staleness)
	for _, id := range to {
		tb.cli.send(id, r)
	}
	tb.cli.send("p0", r)
}

func TestReplicaRolesAfterInit(t *testing.T) {
	tb := newTestbed(1, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	if !tb.replicas["p0"].IsLeader() || tb.replicas["p1"].IsLeader() {
		t.Fatal("leader assignment wrong")
	}
	if !tb.replicas["p1"].IsPublisher() || tb.replicas["p0"].IsPublisher() || tb.replicas["p2"].IsPublisher() {
		t.Fatal("publisher designation wrong")
	}
	for id, g := range tb.replicas {
		if g.Sequencer() != "p0" {
			t.Fatalf("%s believes sequencer is %s", id, g.Sequencer())
		}
	}
}

func TestReplicaUpdateRepliesFromServingPrimariesOnly(t *testing.T) {
	tb := newTestbed(2, time.Second, nil)
	tb.rt.Start()
	tb.cli.onInit = nil
	tb.s.RunFor(50 * ms)
	tb.update(1, "k=v")
	tb.s.RunFor(500 * ms)

	if len(tb.cli.replies) != 2 {
		t.Fatalf("replies = %d, want 2 (p1, p2; sequencer silent)", len(tb.cli.replies))
	}
	for _, r := range tb.cli.replies {
		if r.Replica == "p0" {
			t.Fatal("sequencer replied to an update")
		}
		if string(r.Payload) != "v1" || r.CSN != 1 {
			t.Fatalf("reply = %+v", r)
		}
	}
	// The sequencer still committed silently.
	if tb.replicas["p0"].Applied() != 1 {
		t.Fatal("sequencer did not track the commit")
	}
}

func TestReplicaT1IncludesQueueingDelay(t *testing.T) {
	// Fixed 50ms service time; two updates back-to-back: the second queues
	// behind the first, so its T1 ≈ 100ms (50 queue + 50 service) while the
	// first's ≈ 50ms.
	tb := newTestbed(3, time.Second, func(*rand.Rand) time.Duration { return 50 * ms })
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.update(1, "a=1")
	tb.update(2, "b=2")
	tb.s.RunFor(2 * time.Second)

	var first, second consistency.Reply
	for _, r := range tb.cli.replies {
		if r.Replica != "p1" {
			continue
		}
		switch r.ID.Seq {
		case 1:
			first = r
		case 2:
			second = r
		}
	}
	if first.ID.Seq != 1 || second.ID.Seq != 2 {
		t.Fatalf("missing replies from p1: %+v", tb.cli.replies)
	}
	if first.T1 < 45*ms || first.T1 > 70*ms {
		t.Fatalf("first T1 = %v, want ≈50ms", first.T1)
	}
	if second.T1 < 90*ms || second.T1 > 130*ms {
		t.Fatalf("second T1 = %v, want ≈100ms (queueing included)", second.T1)
	}
}

func TestReplicaReadPerfBroadcastFields(t *testing.T) {
	tb := newTestbed(4, time.Second, func(*rand.Rand) time.Duration { return 20 * ms })
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.read(1, 5, "p2")
	tb.s.RunFor(time.Second)

	if len(tb.cli.perfs) != 1 {
		t.Fatalf("perf broadcasts = %d, want 1", len(tb.cli.perfs))
	}
	pb := tb.cli.perfs[0]
	if pb.Replica != "p2" || !pb.Primary || pb.Deferred {
		t.Fatalf("broadcast = %+v", pb)
	}
	if pb.TS < 15*ms || pb.TS > 25*ms {
		t.Fatalf("TS = %v, want ≈20ms", pb.TS)
	}
	if pb.Sequencer != "p0" {
		t.Fatalf("Sequencer = %s", pb.Sequencer)
	}
	if pb.IsPublisher {
		t.Fatal("p2 is not the publisher; broadcast must not carry publisher extras")
	}
}

func TestReplicaPublisherBroadcastCarriesRates(t *testing.T) {
	tb := newTestbed(5, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	// p1 is the publisher. Commit 3 updates, then read from p1.
	tb.update(1, "a=1")
	tb.update(2, "b=2")
	tb.update(3, "c=3")
	tb.s.RunFor(500 * ms)
	tb.read(4, 5, "p1")
	tb.s.RunFor(500 * ms)

	var pub *consistency.PerfBroadcast
	for i := range tb.cli.perfs {
		if tb.cli.perfs[i].IsPublisher {
			pub = &tb.cli.perfs[i]
		}
	}
	if pub == nil {
		t.Fatal("no publisher broadcast")
	}
	if pub.NU != 3 || pub.NL != 3 {
		t.Fatalf("NU/NL = %d/%d, want 3/3", pub.NU, pub.NL)
	}
	if pub.TU <= 0 || pub.TL <= 0 {
		t.Fatalf("TU/TL = %v/%v", pub.TU, pub.TL)
	}
}

func TestReplicaDeferredReadMeasuresTB(t *testing.T) {
	const lazy = 400 * ms
	tb := newTestbed(6, lazy, nil)
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(100 * ms)
	tb.read(2, 0, "s1") // staleness 0 at a stale secondary → defer
	tb.s.RunFor(2 * time.Second)

	var reply *consistency.Reply
	for i := range tb.cli.replies {
		if tb.cli.replies[i].Replica == "s1" && tb.cli.replies[i].ID.Seq == 2 {
			reply = &tb.cli.replies[i]
		}
	}
	if reply == nil {
		t.Fatal("no reply from deferred secondary")
	}
	if reply.T1 < 100*ms {
		t.Fatalf("T1 = %v, want ≥100ms of defer wait", reply.T1)
	}
	var pb *consistency.PerfBroadcast
	for i := range tb.cli.perfs {
		if tb.cli.perfs[i].Replica == "s1" {
			pb = &tb.cli.perfs[i]
		}
	}
	if pb == nil || !pb.Deferred || pb.TB < 100*ms {
		t.Fatalf("deferred broadcast = %+v", pb)
	}
}

func TestReplicaSecondaryIgnoresDirectUpdates(t *testing.T) {
	tb := newTestbed(7, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.cli.send("s1", req(1, false, "Set", "a=1", 0))
	tb.s.RunFor(500 * ms)
	if got := tb.replicas["s1"].Applied(); got != 0 {
		t.Fatalf("secondary applied %d from a direct update", got)
	}
	if len(tb.cli.replies) != 0 {
		t.Fatal("secondary replied to an update")
	}
}

func TestReplicaChaseRecoversLostAssignment(t *testing.T) {
	// Simulate a lost GSN broadcast: send a read directly to p1 only —
	// never to the sequencer — so no GSNAssign ever arrives. The chase
	// must ask the sequencer and complete the read.
	tb := newTestbed(8, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.cli.send("p1", req(1, true, "Get", "k", 5))
	tb.s.RunFor(3 * time.Second) // > ChaseInterval

	found := false
	for _, r := range tb.cli.replies {
		if r.ID.Seq == 1 && r.Replica == "p1" {
			found = true
		}
	}
	if !found {
		t.Fatal("read without sequencer contact was never chased to completion")
	}
}

func TestReplicaStateUpdateDrainsOnlySatisfiedReads(t *testing.T) {
	tb := newTestbed(9, 50*time.Second, nil) // lazy effectively manual
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(200 * ms)
	tb.read(2, 0, "s1") // defers: s1 at CSN 0, GSN 1
	tb.s.RunFor(200 * ms)

	// Manually inject a state update that covers GSN 1.
	snap, _ := tb.replicas["p1"].App().Snapshot()
	tb.cli.send("s1", consistency.StateUpdate{CSN: 1, Snapshot: snap})
	tb.s.RunFor(500 * ms)

	if len(tb.cli.replies) == 0 {
		t.Fatal("deferred read not released by state update")
	}
	last := tb.cli.replies[len(tb.cli.replies)-1]
	if last.Replica != "s1" || last.CSN != 1 {
		t.Fatalf("reply = %+v", last)
	}
}

func TestReplicaStaleStateUpdateIgnored(t *testing.T) {
	tb := newTestbed(10, 100*ms, nil)
	tb.rt.Start()
	tb.s.RunFor(50 * ms)
	for i := uint64(1); i <= 3; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second) // several lazy rounds: s1 at CSN 3
	if tb.replicas["s1"].CSN() != 3 {
		t.Fatalf("s1 CSN = %d, want 3", tb.replicas["s1"].CSN())
	}
	// A duplicate old state update must not regress anything.
	tb.cli.send("s1", consistency.StateUpdate{CSN: 1, Snapshot: []byte("garbage")})
	tb.s.RunFor(200 * ms)
	if tb.replicas["s1"].CSN() != 3 {
		t.Fatal("stale state update regressed CSN")
	}
}

func TestReplicaNewPanicsOnBadConfig(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil app", func() {
		New(Config{PrimaryGroup: []node.ID{"a", "b"}})
	})
	mustPanic("tiny primary group", func() {
		New(Config{PrimaryGroup: []node.ID{"a"}, App: apps.NewKVStore()})
	})
}
