package client

import (
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/selection"
	"aqua/internal/sim"
)

const ms = time.Millisecond

// fakeReplica records requests and can send scripted replies.
type fakeReplica struct {
	ctx       node.Context
	stack     *group.Stack
	requests  []consistency.Request
	autoReply bool
	t1        time.Duration
}

func (f *fakeReplica) Init(ctx node.Context) {
	f.ctx = ctx
	cfg := group.DefaultConfig()
	cfg.HeartbeatInterval = 0
	f.stack = group.NewStack(ctx, cfg, func(from node.ID, m node.Message) {
		if req, ok := m.(consistency.Request); ok {
			f.requests = append(f.requests, req)
			if f.autoReply {
				f.stack.Send(from, consistency.Reply{
					ID:      req.ID,
					Payload: []byte("ok"),
					T1:      f.t1,
					Replica: ctx.ID(),
				})
			}
		}
	})
}

func (f *fakeReplica) Recv(from node.ID, m node.Message) { f.stack.Handle(from, m) }

type fixture struct {
	s        *sim.Scheduler
	rt       *sim.Runtime
	gw       *Gateway
	replicas map[node.ID]*fakeReplica
}

func newFixture(seed int64, cfg Config) *fixture {
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(ms)))
	f := &fixture{s: s, rt: rt, replicas: make(map[node.ID]*fakeReplica)}

	all := append(append([]node.ID{}, cfg.Service.Primaries...), cfg.Service.Secondaries...)
	for _, id := range all {
		fr := &fakeReplica{}
		f.replicas[id] = fr
		rt.Register(id, fr)
	}
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	cfg.Group = gcfg
	f.gw = New(cfg)
	rt.Register("cli", f.gw)
	return f
}

func baseConfig() Config {
	return Config{
		Service: ServiceInfo{
			Primaries:    []node.ID{"p0", "p1", "p2"},
			Secondaries:  []node.ID{"s0", "s1"},
			Sequencer:    "p0",
			LazyInterval: 2 * time.Second,
		},
		Spec:    qos.Spec{Staleness: 2, Deadline: 200 * ms, MinProb: 0.9},
		Methods: qos.NewMethods("Get"),
	}
}

// invoke runs Invoke inside the gateway's node context via a timer.
func (f *fixture) invoke(method string, payload []byte, cb func(Result)) {
	f.s.After(0, func() { f.gw.Invoke(method, payload, cb) })
}

func TestClientUpdateMulticastsToPrimaryGroup(t *testing.T) {
	f := newFixture(1, baseConfig())
	f.rt.Start()
	f.invoke("Set", []byte("a=1"), nil)
	f.s.RunFor(300 * ms) // within RetryInterval: exactly one attempt

	for _, id := range []node.ID{"p0", "p1", "p2"} {
		if got := len(f.replicas[id].requests); got != 1 {
			t.Fatalf("%s received %d requests, want 1", id, got)
		}
		if f.replicas[id].requests[0].ReadOnly {
			t.Fatal("update marked read-only")
		}
	}
	for _, id := range []node.ID{"s0", "s1"} {
		if len(f.replicas[id].requests) != 0 {
			t.Fatalf("secondary %s received an update", id)
		}
	}
	if m := f.gw.Metrics(); m.Updates != 1 || m.Reads != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestClientReadColdStartSelectsAllAndSequencer(t *testing.T) {
	f := newFixture(2, baseConfig())
	f.rt.Start()
	f.invoke("Get", []byte("a"), nil)
	f.s.RunFor(300 * ms) // within RetryInterval: exactly one attempt

	// Cold start: no history ⇒ Algorithm 1 returns every serving replica
	// plus the sequencer.
	for id, fr := range f.replicas {
		if len(fr.requests) != 1 {
			t.Fatalf("%s received %d requests, want 1 (cold start selects all)", id, len(fr.requests))
		}
		if !fr.requests[0].ReadOnly || fr.requests[0].Staleness != 2 {
			t.Fatalf("read request = %+v", fr.requests[0])
		}
	}
	m := f.gw.Metrics()
	if m.Reads != 1 || m.SelectedTotal != 4 { // p1, p2, s0, s1 (sequencer excluded)
		t.Fatalf("metrics = %+v", m)
	}
}

func TestClientFirstReplyWinsAndRecordsGateway(t *testing.T) {
	cfg := baseConfig()
	f := newFixture(3, cfg)
	for _, fr := range f.replicas {
		fr.autoReply = true
		fr.t1 = ms // pretend 1ms of server time
	}
	f.rt.Start()

	var results []Result
	f.invoke("Get", []byte("a"), func(r Result) { results = append(results, r) })
	f.s.RunFor(time.Second)

	if len(results) != 1 {
		t.Fatalf("callback fired %d times, want once", len(results))
	}
	if string(results[0].Payload) != "ok" || results[0].TimingFailure {
		t.Fatalf("result = %+v", results[0])
	}
	// Every replying replica must have its gateway delay and ert recorded.
	repo := f.gw.Repository()
	now := f.s.Now()
	for id := range f.replicas {
		if repo.ERT(id, now) > time.Minute {
			t.Fatalf("ert for %s not recorded", id)
		}
	}
}

func TestClientTimingFailureAccounting(t *testing.T) {
	cfg := baseConfig()
	cfg.Spec.Deadline = 5 * ms
	f := newFixture(4, cfg)
	// Only s1 replies, and slowly: make every reply arrive after ~10ms by
	// delaying through the scripted replica's own processing.
	for id, fr := range f.replicas {
		fr.autoReply = id == "s1"
	}
	f.rt.Start()
	// Slow the reply by scheduling the invoke, then letting the 1ms-hop
	// network round trip (2ms) exceed... it won't exceed 5ms. Use a tiny
	// deadline of 1ms instead.
	f.s.After(0, func() {
		f.gw.Invoke("Get", []byte("a"), nil)
	})
	f.s.RunFor(time.Second)

	m := f.gw.Metrics()
	if m.Reads != 1 {
		t.Fatalf("reads = %d", m.Reads)
	}
	// Round trip is ≥ 2ms of network plus substrate hops; with a 5ms
	// deadline this may pass; assert consistency between detector & metric.
	if (f.gw.FailureRate() > 0) != (m.TimingFailures > 0) {
		t.Fatal("failure detector and metrics disagree")
	}
}

func TestClientPerfBroadcastUpdatesModelInputs(t *testing.T) {
	f := newFixture(5, baseConfig())
	f.rt.Start()
	f.s.After(0, func() {
		f.replicas["p1"].stack.Send("cli", consistency.PerfBroadcast{
			Replica:     "p1",
			TS:          30 * ms,
			TQ:          5 * ms,
			Primary:     true,
			Sequencer:   "p0",
			IsPublisher: true,
			NU:          3,
			TU:          2 * time.Second,
			NL:          1,
			TL:          500 * ms,
		})
	})
	f.s.RunFor(time.Second)

	repo := f.gw.Repository()
	if !repo.HasHistory("p1") {
		t.Fatal("broadcast did not populate history")
	}
	if repo.UpdateRate() != 1.5 {
		t.Fatalf("λu = %v, want 1.5", repo.UpdateRate())
	}
	if !repo.HasPublisherInfo() {
		t.Fatal("publisher info missing")
	}
}

func TestClientDeferredBroadcastFeedsU(t *testing.T) {
	f := newFixture(6, baseConfig())
	f.rt.Start()
	f.s.After(0, func() {
		f.replicas["s0"].stack.Send("cli", consistency.PerfBroadcast{
			Replica:  "s0",
			TS:       10 * ms,
			TQ:       ms,
			TB:       800 * ms,
			Deferred: true,
		})
	})
	f.s.RunFor(time.Second)
	p := f.gw.Repository().DeferredPMF("s0", 0, 0)
	if p.Mean() < 800*ms {
		t.Fatalf("deferred pmf mean = %v, want ≥800ms (TB history)", p.Mean())
	}
}

func TestClientFollowsSequencerAnnounce(t *testing.T) {
	f := newFixture(7, baseConfig())
	f.rt.Start()
	f.s.After(0, func() {
		f.replicas["p1"].stack.Send("cli", consistency.SequencerAnnounce{Sequencer: "p1"})
	})
	f.s.RunFor(500 * ms)
	if f.gw.Sequencer() != "p1" {
		t.Fatalf("sequencer = %s, want p1", f.gw.Sequencer())
	}

	// Reads now exclude p1 from serving candidates but still send to it as
	// sequencer; p0 becomes a candidate.
	for _, fr := range f.replicas {
		fr.requests = nil
	}
	f.invoke("Get", []byte("a"), nil)
	f.s.RunFor(500 * ms)
	if len(f.replicas["p1"].requests) != 1 {
		t.Fatal("new sequencer did not receive the read")
	}
	m := f.gw.Metrics()
	if m.SelectedTotal != 4 { // p0, p2, s0, s1
		t.Fatalf("selected = %d, want 4", m.SelectedTotal)
	}
}

func TestClientCustomSelectorIsUsed(t *testing.T) {
	cfg := baseConfig()
	cfg.Selector = selection.Single{}
	f := newFixture(8, cfg)
	for _, fr := range f.replicas {
		fr.autoReply = true
	}
	f.rt.Start()
	// Warm one replica's history so Single has a basis.
	f.s.After(0, func() {
		f.replicas["p1"].stack.Send("cli", consistency.PerfBroadcast{
			Replica: "p1", TS: ms, TQ: 0, Primary: true,
		})
	})
	f.s.After(10*ms, func() { f.gw.Invoke("Get", []byte("a"), nil) })
	f.s.RunFor(time.Second)

	total := 0
	for _, fr := range f.replicas {
		total += len(fr.requests)
	}
	if total != 2 { // one serving replica + the sequencer
		t.Fatalf("requests delivered = %d, want 2 (Single + sequencer)", total)
	}
}

func TestClientLateReplyStillRecordsERT(t *testing.T) {
	f := newFixture(9, baseConfig())
	f.rt.Start()
	var done bool
	f.invoke("Get", []byte("a"), func(Result) { done = true })
	f.s.After(50*ms, func() {
		// First reply from p1, later one from p2.
		f.replicas["p1"].stack.Send("cli", consistency.Reply{
			ID: consistency.RequestID{Client: "cli", Seq: 1}, Payload: []byte("x"), Replica: "p1",
		})
	})
	f.s.After(200*ms, func() {
		f.replicas["p2"].stack.Send("cli", consistency.Reply{
			ID: consistency.RequestID{Client: "cli", Seq: 1}, Payload: []byte("y"), Replica: "p2",
		})
	})
	f.s.RunFor(time.Second)

	if !done {
		t.Fatal("callback never fired")
	}
	repo := f.gw.Repository()
	now := f.s.Now()
	if repo.ERT("p2", now) > time.Minute {
		t.Fatal("late reply did not record ert")
	}
	if m := f.gw.Metrics(); m.Reads != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestClientPendingPrune(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxPending = 4
	f := newFixture(10, cfg)
	f.rt.Start()
	for i := 0; i < 10; i++ {
		f.invoke("Set", []byte("a=1"), nil)
	}
	f.s.RunFor(time.Second)
	if got := len(f.gw.pending); got > 4 {
		t.Fatalf("pending grew to %d, cap 4", got)
	}
}

func TestClientUnknownReplyIgnored(t *testing.T) {
	f := newFixture(11, baseConfig())
	f.rt.Start()
	f.s.After(0, func() {
		f.replicas["p1"].stack.Send("cli", consistency.Reply{
			ID: consistency.RequestID{Client: "cli", Seq: 999}, Replica: "p1",
		})
	})
	f.s.RunFor(500 * ms) // must not panic
}

func TestClientRetriesUnansweredRequest(t *testing.T) {
	cfg := baseConfig()
	cfg.RetryInterval = 100 * ms
	f := newFixture(12, cfg)
	f.rt.Start()
	f.invoke("Get", []byte("a"), nil)
	f.s.RunFor(350 * ms) // enough for the initial attempt + ~2 retries

	// Nobody replies: every replica should have seen the request more than
	// once, but metrics count it as a single read with one selection.
	if got := len(f.replicas["p1"].requests); got < 2 {
		t.Fatalf("p1 saw %d attempts, want >=2", got)
	}
	m := f.gw.Metrics()
	if m.Reads != 1 || m.SelectedTotal != 4 {
		t.Fatalf("metrics after retries = %+v", m)
	}
}

func TestClientFailsAfterMaxRetries(t *testing.T) {
	cfg := baseConfig()
	cfg.Spec.Deadline = 100 * ms // exceeded by the time retries exhaust
	cfg.RetryInterval = 50 * ms
	cfg.MaxRetries = 3
	f := newFixture(13, cfg)
	f.rt.Start()
	var results []Result
	f.invoke("Get", []byte("a"), func(r Result) { results = append(results, r) })
	f.s.RunFor(2 * time.Second)

	if len(results) != 1 {
		t.Fatalf("callback fired %d times, want exactly once", len(results))
	}
	r := results[0]
	if r.Err == "" || !r.TimingFailure {
		t.Fatalf("exhausted-retries result = %+v", r)
	}
	if m := f.gw.Metrics(); m.TimingFailures != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestClientSuspicionZeroesDeadReplicaCDF(t *testing.T) {
	cfg := baseConfig()
	cfg.RetryInterval = 100 * ms
	cfg.SuspectTimeout = 150 * ms
	f := newFixture(14, cfg)
	// p1 looks great on paper but never answers; p2 replies.
	f.replicas["p2"].autoReply = true
	f.rt.Start()
	f.s.After(0, func() {
		f.gw.Repository().RecordPerf("p1", ms, 0)
		f.gw.Repository().RecordReply("p1", ms, f.s.Now())
		f.gw.Invoke("Get", []byte("a"), nil) // probes p1 (and others)
	})
	f.s.RunFor(time.Second)

	// After SuspectTimeout, p1's history must stop counting toward PK.
	in := f.gw.model.Evaluate(f.gw.Repository(), f.gw.servingPrimaries(),
		f.gw.cfg.Service.Secondaries, f.gw.sequencer, f.gw.cfg.Spec, f.s.Now())
	f.gw.applySuspicion(&in, f.s.Now())
	for _, c := range in.Candidates {
		if c.ID == "p1" && (c.ImmedCDF != 0 || c.DelayedCDF != 0) {
			t.Fatalf("suspect p1 kept CDF %v/%v", c.ImmedCDF, c.DelayedCDF)
		}
		if c.ID == "p2" && c.ImmedCDF == 0 {
			// p2 replied, so its history (if any) is legitimate; here it
			// has none, which is also 0 — nothing to assert.
			_ = c
		}
	}
}

func TestClientReplyRevivesSuspect(t *testing.T) {
	cfg := baseConfig()
	cfg.RetryInterval = 100 * ms
	cfg.SuspectTimeout = 150 * ms
	f := newFixture(15, cfg)
	f.rt.Start()
	f.invoke("Get", []byte("a"), nil)
	f.s.RunFor(400 * ms) // p1 now suspect
	f.s.After(0, func() {
		f.replicas["p1"].stack.Send("cli", consistency.Reply{
			ID: consistency.RequestID{Client: "cli", Seq: 1}, Payload: []byte("late"), Replica: "p1",
		})
		f.gw.Repository().RecordPerf("p1", ms, 0)
	})
	f.s.RunFor(100 * ms)

	in := f.gw.model.Evaluate(f.gw.Repository(), f.gw.servingPrimaries(),
		f.gw.cfg.Service.Secondaries, f.gw.sequencer, f.gw.cfg.Spec, f.s.Now())
	f.gw.applySuspicion(&in, f.s.Now())
	for _, c := range in.Candidates {
		if c.ID == "p1" && c.ImmedCDF == 0 {
			t.Fatal("replying replica still suspect")
		}
	}
}

func TestClientOnSelectReportsPrediction(t *testing.T) {
	cfg := baseConfig()
	var preds []float64
	var sizes []int
	cfg.OnSelect = func(p float64, n int) {
		preds = append(preds, p)
		sizes = append(sizes, n)
	}
	f := newFixture(16, cfg)
	f.rt.Start()
	// Warm p1 so the prediction is non-trivial.
	f.s.After(0, func() {
		f.gw.Repository().RecordPerf("p1", ms, 0)
		f.gw.Repository().RecordReply("p1", ms, f.s.Now())
		f.gw.Invoke("Get", []byte("a"), nil)
	})
	f.s.RunFor(300 * ms)

	if len(preds) != 1 {
		t.Fatalf("OnSelect fired %d times, want 1", len(preds))
	}
	if preds[0] <= 0 || preds[0] > 1 {
		t.Fatalf("predicted PK = %v", preds[0])
	}
	if sizes[0] < 1 {
		t.Fatalf("selected = %d", sizes[0])
	}
	// Updates never trigger OnSelect.
	f.s.After(0, func() { f.gw.Invoke("Set", []byte("a=1"), nil) })
	f.s.RunFor(200 * ms)
	if len(preds) != 1 {
		t.Fatal("OnSelect fired for an update")
	}
}

func TestPredictedPKMatchesSelectionPK(t *testing.T) {
	in := selection.Input{
		Candidates: []selection.Candidate{
			{ID: "a", Primary: true, ImmedCDF: 0.5},
			{ID: "b", Primary: false, ImmedCDF: 0.4, DelayedCDF: 0.1},
		},
		StaleFactor: 0.5,
		Sequencer:   "seq",
	}
	got := predictedPK(in, []node.ID{"a", "b", "seq"})
	want := selection.PK(in.Candidates, 0.5)
	if got != want {
		t.Fatalf("predictedPK = %v, want %v", got, want)
	}
	// Targets outside the candidate set (the sequencer) are ignored.
	if only := predictedPK(in, []node.ID{"seq"}); only != 0 {
		t.Fatalf("sequencer-only PK = %v, want 0", only)
	}
}
