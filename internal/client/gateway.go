// Package client implements the client-side AQuA gateway handler of
// Section 5: it intercepts invocations, distinguishes reads from updates
// through the read-only method registry, selects replica subsets with the
// probabilistic model and a pluggable Selector, multicasts requests,
// delivers first replies, maintains the information repository from
// performance broadcasts and piggybacked timings, and detects timing
// failures against the client's QoS specification.
package client

import (
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
)

// ServiceInfo is what a client must know about a replicated service.
type ServiceInfo struct {
	// Primaries is the full primary group, including the initial sequencer.
	Primaries []node.ID
	// Secondaries is the secondary group.
	Secondaries []node.ID
	// Sequencer is the initial sequencer (the lowest-ID primary); the
	// client follows failovers via announcements and broadcasts.
	Sequencer node.ID
	// LazyInterval is T_L, used by the staleness model.
	LazyInterval time.Duration
}

// Config describes one client gateway.
type Config struct {
	Service ServiceInfo
	// Spec is this client's QoS specification for read-only requests.
	Spec qos.Spec
	// Methods names the service's read-only methods; anything else is an
	// update.
	Methods *qos.Methods
	// WindowSize is the sliding-window length l (default 20, as in the
	// paper's main experiments).
	WindowSize int
	// BinWidth coarsens pmfs before convolution (default 2ms; 0 keeps the
	// default, negative disables binning).
	BinWidth time.Duration
	// Selector picks replica subsets for reads (default Algorithm 1).
	Selector selection.Selector
	// Group tunes the communication substrate.
	Group group.Config
	// OnBreach is invoked once if the observed timing-failure frequency
	// exceeds 1 − MinProb (the paper's client callback). May be nil.
	OnBreach func(observedFailureRate float64)
	// MaxPending bounds remembered in-flight/completed requests
	// (default 1024).
	MaxPending int
	// RetryInterval is how long an in-flight request may go unanswered
	// before the gateway reselects replicas and retransmits it. The
	// default is max(2×Deadline, 500ms). Crashed replicas leave behind
	// attractive-looking histories; retries (with suspicion, below) keep
	// a request from stalling on a fully-dead selection.
	RetryInterval time.Duration
	// MaxRetries bounds retransmissions before the invocation is failed
	// back to the application (default 20).
	MaxRetries int
	// SuspectTimeout is how long a replica may leave requests unanswered
	// before the model treats its recorded history as obsolete (its CDFs
	// evaluate to 0, so it no longer counts toward P_K). Default
	// 2×RetryInterval.
	SuspectTimeout time.Duration
	// CountedEstimator switches the staleness model to the n_L-anchored
	// variant (see selection.Model.CountedEstimator).
	CountedEstimator bool
	// OnSelect, if set, observes every read's initial selection: the model's
	// predicted probability that at least one selected replica answers by
	// the deadline (P_K over the full chosen set), and the set size. Used by
	// the model-calibration experiment.
	OnSelect func(predicted float64, selected int)
	// Obs, when non-nil, receives request counters, the response-time
	// histogram, and the prediction-vs-observed calibration tables. The nil
	// default keeps every per-request path allocation-free.
	Obs *obs.Registry
	// Tracer, when non-nil, receives one JSONL span per completed request.
	Tracer *obs.Tracer
}

func (c *Config) setDefaults() {
	if c.WindowSize <= 0 {
		c.WindowSize = 20
	}
	switch {
	case c.BinWidth == 0:
		c.BinWidth = 2 * time.Millisecond
	case c.BinWidth < 0:
		c.BinWidth = 0
	}
	if c.Selector == nil {
		c.Selector = selection.Algorithm1{}
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * c.Spec.Deadline
		if c.RetryInterval < 500*time.Millisecond {
			c.RetryInterval = 500 * time.Millisecond
		}
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 20
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 2 * c.RetryInterval
	}
}

// Result reports one completed invocation to the application.
type Result struct {
	Payload []byte
	Err     string
	// ResponseTime is tr = tp − t0.
	ResponseTime time.Duration
	// TimingFailure reports tr > d (reads only).
	TimingFailure bool
	// Selected is the number of serving replicas chosen (reads only;
	// excludes the sequencer).
	Selected int
	// Replica is the gateway whose reply was delivered (the first).
	Replica node.ID
}

// Metrics aggregates a client gateway's observations, read by experiments.
type Metrics struct {
	Reads          int
	Updates        int
	TimingFailures int
	// SelectedTotal sums Selected over all reads (for the Figure 4a
	// average).
	SelectedTotal int
	// Selections counts, per serving replica, how often it was selected.
	Selections map[node.ID]int
}

type pendingReq struct {
	id        consistency.RequestID
	req       consistency.Request
	readOnly  bool
	t0        time.Time // interception
	tm        time.Time // transmission via the substrate
	selected  int
	attempts  int
	done      bool
	cb        func(Result)
	stopRetry node.CancelFunc

	// predicted is the model's P_K(d) over the initial selection, captured
	// only when observability is enabled (hasPred) so the disabled path does
	// no extra float work.
	predicted float64
	hasPred   bool
}

// Gateway is the client-side gateway handler; it implements node.Node.
type Gateway struct {
	cfg Config
	ctx node.Context

	stack *group.Stack
	repo  *repository.Repository
	fd    *qos.FailureDetector
	model selection.Model

	sequencer    node.ID
	nextSeq      uint64
	pending      map[consistency.RequestID]*pendingReq
	pendingOrder []consistency.RequestID

	// firstUnanswered records, per replica, when the oldest still
	// unanswered request was sent to it; replicas silent past
	// SuspectTimeout have their model CDFs zeroed.
	firstUnanswered map[node.ID]time.Time

	// evalIn and servingBuf are reused across reads so the selection hot
	// path (model evaluation + Algorithm 1) stays allocation-free; the
	// repository's generation-keyed PMF caches and the model's sort-order
	// cache live behind them.
	evalIn     selection.Input
	servingBuf []node.ID

	metrics Metrics

	// ins holds the resolved observability instruments (all nil no-ops when
	// Config.Obs is nil); obsOn gates the prediction capture shared by
	// metrics and traces.
	ins   instruments
	obsOn bool
}

var _ node.Node = (*Gateway)(nil)

// New creates a client gateway.
func New(cfg Config) *Gateway {
	cfg.setDefaults()
	return &Gateway{
		cfg:  cfg,
		repo: repository.New(cfg.WindowSize),
		fd:   qos.NewFailureDetector(cfg.Spec, cfg.OnBreach),
		model: selection.Model{
			BinWidth:         cfg.BinWidth,
			LazyInterval:     cfg.Service.LazyInterval,
			CountedEstimator: cfg.CountedEstimator,
		},
		sequencer:       cfg.Service.Sequencer,
		pending:         make(map[consistency.RequestID]*pendingReq),
		firstUnanswered: make(map[node.ID]time.Time),
		metrics:         Metrics{Selections: make(map[node.ID]int)},
	}
}

// Init implements node.Node.
func (g *Gateway) Init(ctx node.Context) {
	g.ctx = ctx
	g.stack = group.NewStack(ctx, g.cfg.Group, g.handleDelivery)
	g.ins = newInstruments(g.cfg.Obs, ctx.ID(), g.cfg.Service)
	g.obsOn = g.cfg.Obs != nil || g.cfg.Tracer != nil
}

// Recv implements node.Node.
func (g *Gateway) Recv(from node.ID, m node.Message) {
	if g.stack.Handle(from, m) {
		return
	}
	g.ctx.Logf("client: unexpected raw message %T from %s", m, from)
}

func (g *Gateway) handleDelivery(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case consistency.Reply:
		g.onReply(msg)
	case *consistency.Reply:
		// Pointer form from the live transport's shared decoder.
		g.onReply(*msg)
	case consistency.PerfBroadcast:
		g.onPerfBroadcast(msg)
	case consistency.SequencerAnnounce:
		g.sequencer = msg.Sequencer
	default:
		g.onOther(from, m)
	}
}

// Invoke issues a request. It must be called from within this node's
// callbacks (a timer or message handler) — workload drivers wrap the
// gateway and schedule their calls through the node's own timers. cb is
// invoked exactly once: with the first reply, or with an error Result
// after MaxRetries unanswered retransmissions.
func (g *Gateway) Invoke(method string, payload []byte, cb func(Result)) {
	g.invoke(method, payload, g.cfg.Spec.Staleness, cb)
}

// InvokeStale is Invoke with an explicit per-request staleness bound
// overriding the client's Spec (reads only; updates ignore it). A shard
// migration uses staleness 0 to read a key's committed frontier value from
// the old owner regardless of how loose the router's client spec is.
func (g *Gateway) InvokeStale(method string, payload []byte, staleness int, cb func(Result)) {
	g.invoke(method, payload, staleness, cb)
}

func (g *Gateway) invoke(method string, payload []byte, staleness int, cb func(Result)) {
	now := g.ctx.Now()
	g.nextSeq++
	id := consistency.RequestID{Client: g.ctx.ID(), Seq: g.nextSeq}
	readOnly := g.cfg.Methods.IsReadOnly(method)

	req := consistency.Request{
		ID:       id,
		Method:   method,
		Payload:  payload,
		ReadOnly: readOnly,
	}
	if readOnly {
		req.Staleness = staleness
		g.metrics.Reads++
		g.ins.reads.Inc()
	} else {
		g.metrics.Updates++
		g.ins.updates.Inc()
	}
	p := &pendingReq{id: id, req: req, readOnly: readOnly, t0: now, cb: cb}
	g.track(p)
	g.transmit(p)
}

// transmit selects targets and sends one attempt of a pending request,
// arming the retry timer.
func (g *Gateway) transmit(p *pendingReq) {
	now := g.ctx.Now()
	p.attempts++
	if p.attempts > 1 {
		g.ins.retries.Inc()
	}

	var targets []node.ID
	if p.readOnly {
		g.model.EvaluateInto(&g.evalIn, g.repo, g.servingPrimaries(), g.cfg.Service.Secondaries,
			g.sequencer, g.cfg.Spec, now)
		in := &g.evalIn
		g.applySuspicion(in, now)
		targets = g.cfg.Selector.Select(*in)
		if p.attempts == 1 {
			// Figure 4a semantics: count the initial selection only.
			for _, t := range targets {
				if t != g.sequencer {
					p.selected++
					g.metrics.Selections[t]++
				}
			}
			g.metrics.SelectedTotal += p.selected
			if g.cfg.OnSelect != nil {
				g.cfg.OnSelect(predictedPK(*in, targets), p.selected)
			}
			g.ins.selectedTotal.Add(uint64(p.selected))
			if g.obsOn {
				p.predicted = g.observeSelection(in, targets)
				p.hasPred = true
			}
		}
	} else {
		// Updates are multicast to the whole primary group (Section 5):
		// ordering, not selection, governs them.
		targets = g.cfg.Service.Primaries
	}

	p.tm = now
	for _, t := range targets {
		if _, waiting := g.firstUnanswered[t]; !waiting && t != g.sequencer {
			g.firstUnanswered[t] = now
		}
		g.stack.Send(t, p.req)
	}

	p.stopRetry = g.ctx.SetTimer(g.cfg.RetryInterval, func() { g.retry(p) })
}

// retry fires when a request has gone a full RetryInterval unanswered:
// either retransmit with a fresh selection (suspicion may have aged out
// dead replicas by now) or fail the invocation back to the caller.
func (g *Gateway) retry(p *pendingReq) {
	if p.done {
		return
	}
	if p.attempts >= g.cfg.MaxRetries {
		p.done = true
		res := Result{
			Err:          "aqua: no replica responded",
			ResponseTime: g.ctx.Now().Sub(p.t0),
			Selected:     p.selected,
		}
		if p.readOnly {
			res.TimingFailure = g.fd.Record(res.ResponseTime)
			if res.TimingFailure {
				g.metrics.TimingFailures++
			}
			if g.obsOn {
				g.observeReadOutcome(p, &res)
			}
		}
		if g.cfg.Tracer != nil {
			g.recordSpan(p, &res, false)
		}
		if p.cb != nil {
			p.cb(res)
		}
		return
	}
	g.transmit(p)
}

// applySuspicion zeroes the distribution functions of replicas that have
// left requests unanswered past SuspectTimeout. Their recorded windows are
// obsolete — the paper sizes windows to "eliminate obsolete measurements",
// and a crashed replica's frozen history is the extreme case. The replica
// itself stays selectable (its huge ert sorts it first, so it keeps being
// probed and revives instantly once it answers), but it no longer counts
// toward P_K(d).
func (g *Gateway) applySuspicion(in *selection.Input, now time.Time) {
	changed := false
	for i := range in.Candidates {
		first, waiting := g.firstUnanswered[in.Candidates[i].ID]
		if waiting && now.Sub(first) > g.cfg.SuspectTimeout {
			in.Candidates[i].ImmedCDF = 0
			in.Candidates[i].DelayedCDF = 0
			changed = true
		}
	}
	if changed {
		// The zeroed CDFs can reorder ert ties, so the precomputed sort
		// order no longer applies.
		in.MarkDirty()
	}
}

func (g *Gateway) track(p *pendingReq) {
	g.pending[p.id] = p
	g.pendingOrder = append(g.pendingOrder, p.id)
	for len(g.pendingOrder) > g.cfg.MaxPending {
		victimID := g.pendingOrder[0]
		g.pendingOrder = g.pendingOrder[1:]
		if victim, ok := g.pending[victimID]; ok {
			victim.done = true
			if victim.stopRetry != nil {
				victim.stopRetry()
			}
			delete(g.pending, victimID)
		}
	}
}

// servingPrimaries returns primary members that can serve reads: everyone
// but the current sequencer. The returned slice aliases a per-gateway
// buffer reused across calls.
func (g *Gateway) servingPrimaries() []node.ID {
	g.servingBuf = g.servingBuf[:0]
	for _, id := range g.cfg.Service.Primaries {
		if id != g.sequencer {
			g.servingBuf = append(g.servingBuf, id)
		}
	}
	return g.servingBuf
}

// onReply processes a replica's response: repository bookkeeping for every
// reply, delivery and timing-failure accounting for the first.
func (g *Gateway) onReply(r consistency.Reply) {
	delete(g.firstUnanswered, r.Replica)
	p, ok := g.pending[r.ID]
	if !ok {
		return // pruned or unknown
	}
	now := g.ctx.Now()

	// tg = tp − tm − t1 (Section 5.4); RecordReply clamps negatives.
	g.repo.RecordReply(r.Replica, now.Sub(p.tm)-r.T1, now)

	// Calibration counts every reply, first or not: the per-replica model
	// predicts whether *this replica* answers within d, independent of who
	// wins the race.
	if p.readOnly {
		if rc := g.ins.perReplica[r.Replica]; rc != nil {
			rc.replies.Inc()
			if now.Sub(p.tm) <= g.cfg.Spec.Deadline {
				rc.timely.Inc()
			}
		}
	}

	if p.done {
		return
	}
	p.done = true
	if p.stopRetry != nil {
		p.stopRetry()
	}

	res := Result{
		Payload:      r.Payload,
		Err:          r.Err,
		ResponseTime: now.Sub(p.t0),
		Selected:     p.selected,
		Replica:      r.Replica,
	}
	if p.readOnly {
		res.TimingFailure = g.fd.Record(res.ResponseTime)
		if res.TimingFailure {
			g.metrics.TimingFailures++
		}
		if g.obsOn {
			g.observeReadOutcome(p, &res)
		}
	}
	if g.cfg.Tracer != nil {
		g.recordSpan(p, &res, r.Deferred)
	}
	if p.cb != nil {
		p.cb(res)
	}
}

// onPerfBroadcast folds a server's published measurements into the
// repository (Section 5.4).
func (g *Gateway) onPerfBroadcast(pb consistency.PerfBroadcast) {
	g.repo.RecordPerf(pb.Replica, pb.TS, pb.TQ)
	if pb.Deferred {
		g.repo.RecordDeferWait(pb.Replica, pb.TB)
	}
	if pb.Sequencer != "" {
		g.sequencer = pb.Sequencer
	}
	if pb.IsPublisher {
		g.repo.RecordPublisherRates(pb.NU, pb.TU)
		g.repo.RecordLazyInfo(pb.NL, pb.TL, g.ctx.Now())
	}
}

func (g *Gateway) onOther(from node.ID, m node.Message) {
	g.ctx.Logf("client: unhandled payload %T from %s", m, from)
}

// Metrics returns a copy of the gateway's aggregate observations.
func (g *Gateway) Metrics() Metrics {
	out := g.metrics
	out.Selections = make(map[node.ID]int, len(g.metrics.Selections))
	for k, v := range g.metrics.Selections {
		out.Selections[k] = v
	}
	return out
}

// FailureRate exposes the timing-failure detector's observed rate.
func (g *Gateway) FailureRate() float64 { return g.fd.FailureRate() }

// Sequencer returns the client's current belief of the sequencer identity.
func (g *Gateway) Sequencer() node.ID { return g.sequencer }

// Repository exposes the information repository (benchmarks seed it
// directly; tests inspect it).
func (g *Gateway) Repository() *repository.Repository { return g.repo }

// predictedPK evaluates the model's success prediction for the chosen set:
// P_K(d) over every selected serving candidate.
func predictedPK(in selection.Input, targets []node.ID) float64 {
	byID := make(map[node.ID]selection.Candidate, len(in.Candidates))
	for _, c := range in.Candidates {
		byID[c.ID] = c
	}
	var chosen []selection.Candidate
	for _, id := range targets {
		if c, ok := byID[id]; ok {
			chosen = append(chosen, c)
		}
	}
	return selection.PK(chosen, in.StaleFactor)
}
