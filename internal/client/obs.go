package client

import (
	"fmt"

	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/selection"
)

// calBins is the number of predicted-probability bins in the calibration
// table: bin k covers predictions in [k/10, (k+1)/10).
const calBins = 10

// replicaCal is the per-replica prediction-vs-observed calibration row: how
// often the model selected the replica, the summed per-replica timely
// probability it predicted, and how the replica's replies actually landed
// against the deadline. avg(predicted) ≈ timely/replies is a calibrated
// model.
type replicaCal struct {
	selections   *obs.Counter
	predictedSum *obs.FloatCounter
	replies      *obs.Counter
	timely       *obs.Counter
}

// instruments holds the client gateway's resolved metrics. The zero value
// (observability disabled) is fully usable: every field is a nil instrument
// whose methods are no-ops, and perReplica lookups on the nil map return
// nil.
type instruments struct {
	reads          *obs.Counter
	updates        *obs.Counter
	timingFailures *obs.Counter
	retries        *obs.Counter
	failureRate    *obs.FloatGauge
	respMS         *obs.Histogram
	selectedTotal  *obs.Counter

	// Prediction-accuracy telemetry: P_K(d) predictions summed and binned
	// against observed timely completions.
	predictedSum *obs.FloatCounter
	timelyReads  *obs.Counter
	binTotal     [calBins]*obs.Counter
	binTimely    [calBins]*obs.Counter

	perReplica map[node.ID]*replicaCal
}

// newInstruments resolves every instrument once; reg == nil yields the
// all-nil zero value so the per-request paths stay allocation-free.
func newInstruments(reg *obs.Registry, self node.ID, service ServiceInfo) instruments {
	if reg == nil {
		return instruments{}
	}
	c := string(self)
	ins := instruments{
		reads:          reg.Counter("aqua_client_reads_total", "client", c),
		updates:        reg.Counter("aqua_client_updates_total", "client", c),
		timingFailures: reg.Counter("aqua_client_timing_failures_total", "client", c),
		retries:        reg.Counter("aqua_client_retries_total", "client", c),
		failureRate:    reg.FloatGauge("aqua_client_failure_rate", "client", c),
		respMS:         reg.Histogram("aqua_client_read_response_ms", obs.LatencyBucketsMS(), "client", c),
		selectedTotal:  reg.Counter("aqua_client_selected_replicas_total", "client", c),
		predictedSum:   reg.FloatCounter("aqua_client_predicted_pk_sum", "client", c),
		timelyReads:    reg.Counter("aqua_client_timely_reads_total", "client", c),
		perReplica:     make(map[node.ID]*replicaCal, len(service.Primaries)+len(service.Secondaries)),
	}
	for i := 0; i < calBins; i++ {
		bin := fmt.Sprintf("%.1f", float64(i)/calBins)
		ins.binTotal[i] = reg.Counter("aqua_client_prediction_bin_total", "client", c, "bin", bin)
		ins.binTimely[i] = reg.Counter("aqua_client_prediction_bin_timely_total", "client", c, "bin", bin)
	}
	addReplica := func(id node.ID) {
		if _, dup := ins.perReplica[id]; dup {
			return
		}
		r := string(id)
		ins.perReplica[id] = &replicaCal{
			selections:   reg.Counter("aqua_client_selections_total", "client", c, "replica", r),
			predictedSum: reg.FloatCounter("aqua_client_replica_predicted_sum", "client", c, "replica", r),
			replies:      reg.Counter("aqua_client_replica_replies_total", "client", c, "replica", r),
			timely:       reg.Counter("aqua_client_replica_timely_total", "client", c, "replica", r),
		}
	}
	for _, id := range service.Primaries {
		addReplica(id)
	}
	for _, id := range service.Secondaries {
		addReplica(id)
	}
	return ins
}

// binIndex maps a probability into its calibration bin.
func binIndex(p float64) int {
	i := int(p * calBins)
	if i < 0 {
		i = 0
	}
	if i >= calBins {
		i = calBins - 1
	}
	return i
}

// observeSelection records the initial selection of a read: the chosen set
// size, the per-replica predicted timely probabilities, and the model's
// P_K(d) for the whole set (returned so the caller can store it on the
// pending request for outcome pairing). Called only when observability is
// enabled.
func (g *Gateway) observeSelection(in *selection.Input, targets []node.ID) float64 {
	for i := range in.Candidates {
		c := in.Candidates[i]
		selected := false
		for _, id := range targets {
			if id == c.ID {
				selected = true
				break
			}
		}
		if !selected {
			continue
		}
		rc := g.ins.perReplica[c.ID]
		if rc == nil {
			continue
		}
		rc.selections.Inc()
		p := c.ImmedCDF
		if !c.Primary {
			p = c.ImmedCDF*in.StaleFactor + c.DelayedCDF*(1-in.StaleFactor)
		}
		rc.predictedSum.Add(p)
	}
	return selection.PKOf(in, targets)
}

// observeReadOutcome pairs a read's completion with its selection-time
// prediction: the calibration bins, the response-time histogram, and the
// observed failure rate.
func (g *Gateway) observeReadOutcome(p *pendingReq, res *Result) {
	g.ins.respMS.Observe(float64(res.ResponseTime) / 1e6)
	if res.TimingFailure {
		g.ins.timingFailures.Inc()
	} else {
		g.ins.timelyReads.Inc()
	}
	g.ins.failureRate.Set(g.fd.FailureRate())
	if p.hasPred {
		g.ins.predictedSum.Add(p.predicted)
		bin := binIndex(p.predicted)
		g.ins.binTotal[bin].Inc()
		if !res.TimingFailure {
			g.ins.binTimely[bin].Inc()
		}
	}
}

// recordSpan emits the per-request trace record. Callers guard on
// g.cfg.Tracer != nil so the disabled path never builds the span.
func (g *Gateway) recordSpan(p *pendingReq, res *Result, deferred bool) {
	kind := "update"
	if p.readOnly {
		kind = "read"
	}
	span := obs.Span{
		Kind:          kind,
		Node:          string(g.ctx.ID()),
		Client:        string(p.id.Client),
		Seq:           p.id.Seq,
		Method:        p.req.Method,
		Replica:       string(res.Replica),
		Selected:      p.selected,
		Deferred:      deferred,
		ResponseMS:    float64(res.ResponseTime) / 1e6,
		TimingFailure: res.TimingFailure,
		Err:           res.Err,
	}
	if p.hasPred {
		span.Predicted = p.predicted
	}
	g.cfg.Tracer.Record(g.ctx.Now(), &span)
}
