// Package repository implements the client gateway's information repository
// (Section 5.4): sliding-window histories of each replica's measured
// service time, queueing delay, and defer wait; the latest gateway delay
// and elapsed response time per replica; and the lazy publisher's
// update-arrival statistics from which the staleness model derives λu and
// t_l.
//
// Distribution computation is the dominant cost of every read (Figure 3),
// so the repository memoizes it: each History carries a monotonic
// generation counter bumped by every mutation, and the computed
// ImmediatePMF/DeferredPMF are cached keyed by (generation, bin width, and
// — when it is actually used — the fallback lazy-update wait). Reads that
// arrive between performance broadcasts reuse the previous distributions
// instead of reconvolving; all rebuilds run through shared scratch buffers
// so even cache misses allocate only when a cached PMF needs to grow.
package repository

import (
	"time"

	"aqua/internal/node"
	"aqua/internal/stats"
)

// NeverReplied is the elapsed-response-time reported for replicas that have
// never answered this client. It is large so Algorithm 1's decreasing-ert
// sort probes unknown replicas first, seeding their histories.
const NeverReplied = time.Duration(1<<62 - 1)

// pmfCache memoizes one computed distribution for a History.
type pmfCache struct {
	valid    bool
	gen      uint64
	binWidth time.Duration
	// usedFallback/fallbackU key the deferred distribution only: the
	// fallback estimate participates in the result only while the replica
	// has no defer-wait history.
	usedFallback bool
	fallbackU    time.Duration
	pmf          stats.PMF
}

func (c *pmfCache) hit(gen uint64, binWidth time.Duration, usedFallback bool, fallbackU time.Duration) bool {
	return c.valid && c.gen == gen && c.binWidth == binWidth &&
		c.usedFallback == usedFallback && (!usedFallback || c.fallbackU == fallbackU)
}

// History holds one replica's recorded performance, as seen by one client.
type History struct {
	s *stats.Window // service times ts
	w *stats.Window // queueing delays tq
	u *stats.Window // defer waits tb (lazy-update wait U)

	gateway    time.Duration // latest two-way gateway delay tg
	hasGateway bool

	lastReply    time.Time // for ert
	hasLastReply bool

	// gen is bumped by every mutation that can change this replica's
	// distributions; it keys the memoized pmfs below.
	gen      uint64
	immed    pmfCache
	deferred pmfCache
}

// Repository is one client's store. It is used only from within the owning
// client gateway's callbacks, so it needs no locking (the scratch buffers
// below rely on that).
type Repository struct {
	windowSize int
	replicas   map[node.ID]*History

	// gen counts every mutation of the repository — replica histories and
	// publisher state alike. Model-level caches (e.g. the selection sort
	// order) key on it.
	gen uint64

	// Publisher-fed staleness inputs.
	rateCounts    []int           // sliding window of nu
	rateDurations []time.Duration // matching tu
	lastNL        int
	lastTL        time.Duration
	lastPubAt     time.Time
	hasPublisher  bool

	// Scratch buffers for the allocation-free distribution kernels. Only
	// live within one Immediate/DeferredPMF call.
	scratch struct {
		samples []time.Duration
		raw     stats.PMF // exact empirical pmf of one window
		opA     stats.PMF // first binned convolution operand
		opB     stats.PMF // second binned operand (or fallback point)
		conv    stats.PMF // convolution result before the final bin
		kernel  stats.ConvScratch
	}
}

// New creates a repository whose sliding windows hold windowSize samples
// (the paper's l; its experiments use 10 and 20).
func New(windowSize int) *Repository {
	if windowSize <= 0 {
		panic("repository: window size must be positive")
	}
	return &Repository{
		windowSize: windowSize,
		replicas:   make(map[node.ID]*History),
	}
}

// WindowSize returns l.
func (r *Repository) WindowSize() int { return r.windowSize }

// Generation returns a counter bumped by every mutation of the repository.
// Callers that cache anything derived from repository state can key their
// caches on it.
func (r *Repository) Generation() uint64 { return r.gen }

func (r *Repository) history(id node.ID) *History {
	h, ok := r.replicas[id]
	if !ok {
		h = &History{
			s: stats.NewWindow(r.windowSize),
			w: stats.NewWindow(r.windowSize),
			u: stats.NewWindow(r.windowSize),
		}
		r.replicas[id] = h
	}
	return h
}

// RecordPerf stores a performance broadcast's service time and queueing
// delay for a replica.
func (r *Repository) RecordPerf(id node.ID, ts, tq time.Duration) {
	h := r.history(id)
	h.s.Push(ts)
	h.w.Push(tq)
	h.gen++
	r.gen++
}

// RecordDeferWait stores a deferred read's buffering time tb, the history
// of the lazy-update wait U.
func (r *Repository) RecordDeferWait(id node.ID, tb time.Duration) {
	h := r.history(id)
	h.u.Push(tb)
	h.gen++
	r.gen++
}

// RecordReply stores the gateway delay derived from a reply and refreshes
// the replica's last-reply instant (the basis of ert).
func (r *Repository) RecordReply(id node.ID, tg time.Duration, now time.Time) {
	if tg < 0 {
		// Clock arithmetic can go slightly negative when the piggybacked
		// t1 rounds above the true gap; clamp rather than poison the model.
		tg = 0
	}
	h := r.history(id)
	h.gateway = tg
	h.hasGateway = true
	h.lastReply = now
	h.hasLastReply = true
	h.gen++
	r.gen++
}

// ERT returns the elapsed response time for a replica: the time since this
// client last received any reply from it, or NeverReplied.
func (r *Repository) ERT(id node.ID, now time.Time) time.Duration {
	h, ok := r.replicas[id]
	if !ok || !h.hasLastReply {
		return NeverReplied
	}
	return now.Sub(h.lastReply)
}

// HasHistory reports whether any service-time measurements exist for id.
func (r *Repository) HasHistory(id node.ID) bool {
	h, ok := r.replicas[id]
	return ok && h.s.Len() > 0
}

// windowPMFInto builds the binned empirical PMF of one sliding window into
// dst through the shared scratch buffers.
func (r *Repository) windowPMFInto(dst *stats.PMF, w *stats.Window, binWidth time.Duration) {
	r.scratch.samples = w.AppendSamples(r.scratch.samples[:0])
	stats.FromSamplesInto(&r.scratch.raw, r.scratch.samples)
	r.scratch.raw.BinInto(dst, binWidth)
}

// ImmediatePMF builds the response-time distribution for an immediate read,
// Equation 5: R = S + W + G, as the discrete convolution of the S and W
// windows shifted by the latest gateway delay. binWidth coarsens the
// intermediate pmfs to bound convolution cost (0 disables binning). The
// zero PMF is returned when no history exists.
//
// The result is memoized per replica: repeated calls between repository
// mutations return the cached distribution. Callers must treat the
// returned PMF as read-only.
func (r *Repository) ImmediatePMF(id node.ID, binWidth time.Duration) stats.PMF {
	h, ok := r.replicas[id]
	if !ok || h.s.Len() == 0 {
		return stats.PMF{}
	}
	if h.immed.hit(h.gen, binWidth, false, 0) {
		return h.immed.pmf
	}
	sc := &r.scratch
	r.windowPMFInto(&sc.opA, h.s, binWidth)
	r.windowPMFInto(&sc.opB, h.w, binWidth)
	stats.ConvolveInto(&sc.conv, sc.opA, sc.opB, &sc.kernel)
	sc.conv.BinInto(&h.immed.pmf, binWidth)
	if h.hasGateway {
		h.immed.pmf.ShiftInPlace(h.gateway)
	}
	h.immed = pmfCache{valid: true, gen: h.gen, binWidth: binWidth, pmf: h.immed.pmf}
	return h.immed.pmf
}

// DeferredPMF builds the deferred-read distribution, Equation 6:
// R = S + W + G + U. When no defer-wait history exists, fallbackU (the
// client's point estimate of the remaining time to the next lazy update)
// substitutes for the U history.
//
// Memoized like ImmediatePMF; fallbackU enters the cache key only while it
// actually substitutes for an empty U window. Callers must treat the
// returned PMF as read-only.
func (r *Repository) DeferredPMF(id node.ID, binWidth, fallbackU time.Duration) stats.PMF {
	h, ok := r.replicas[id]
	if !ok || h.s.Len() == 0 {
		return stats.PMF{}
	}
	usedFallback := h.u.Len() == 0
	if h.deferred.hit(h.gen, binWidth, usedFallback, fallbackU) {
		return h.deferred.pmf
	}
	base := r.ImmediatePMF(id, binWidth)
	sc := &r.scratch
	if usedFallback {
		stats.PointInto(&sc.opB, fallbackU)
	} else {
		r.windowPMFInto(&sc.opB, h.u, binWidth)
	}
	stats.ConvolveInto(&sc.conv, base, sc.opB, &sc.kernel)
	sc.conv.BinInto(&h.deferred.pmf, binWidth)
	h.deferred = pmfCache{
		valid: true, gen: h.gen, binWidth: binWidth,
		usedFallback: usedFallback, fallbackU: fallbackU,
		pmf: h.deferred.pmf,
	}
	return h.deferred.pmf
}

// RecordPublisherRates stores one <nu, tu> pair from a lazy-publisher
// broadcast into the rate window.
func (r *Repository) RecordPublisherRates(nu int, tu time.Duration) {
	if tu <= 0 {
		return
	}
	r.rateCounts = append(r.rateCounts, nu)
	r.rateDurations = append(r.rateDurations, tu)
	if len(r.rateCounts) > r.windowSize {
		r.rateCounts = r.rateCounts[1:]
		r.rateDurations = r.rateDurations[1:]
	}
	r.gen++
}

// RecordLazyInfo stores the latest <nL, tL> pair and the local reception
// instant of the broadcast that carried it.
func (r *Repository) RecordLazyInfo(nl int, tl time.Duration, receivedAt time.Time) {
	r.lastNL = nl
	r.lastTL = tl
	r.lastPubAt = receivedAt
	r.hasPublisher = true
	r.gen++
}

// HasPublisherInfo reports whether any lazy-publisher broadcast arrived.
func (r *Repository) HasPublisherInfo() bool { return r.hasPublisher }

// UpdateRate returns λu in updates per second: Σnu / Σtu over the sliding
// window (Section 5.4.1), or 0 with no data.
func (r *Repository) UpdateRate() float64 {
	var n int
	var d time.Duration
	for i, c := range r.rateCounts {
		n += c
		d += r.rateDurations[i]
	}
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// TimeSinceLazyUpdate estimates t_l, the time elapsed since the last lazy
// update, as (tL + tz) mod TL where tz is the time since the latest
// publisher broadcast arrived (Section 5.4.1). ok is false when no
// publisher information has been received yet.
func (r *Repository) TimeSinceLazyUpdate(now time.Time, lazyInterval time.Duration) (time.Duration, bool) {
	if !r.hasPublisher || lazyInterval <= 0 {
		return 0, false
	}
	tz := now.Sub(r.lastPubAt)
	if tz < 0 {
		tz = 0
	}
	return (r.lastTL + tz) % lazyInterval, true
}

// LastLazyCount returns the publisher's last reported nL (updates since the
// last lazy update), for diagnostics and the counted-staleness estimator
// extension.
func (r *Repository) LastLazyCount() int { return r.lastNL }

// SincePublisherReport returns the time elapsed since the most recent
// publisher broadcast arrived (t_z) together with the n_L it carried. ok is
// false before any broadcast.
func (r *Repository) SincePublisherReport(now time.Time) (tz time.Duration, nl int, ok bool) {
	if !r.hasPublisher {
		return 0, 0, false
	}
	tz = now.Sub(r.lastPubAt)
	if tz < 0 {
		tz = 0
	}
	return tz, r.lastNL, true
}
