package repository

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aqua/internal/node"
	"aqua/internal/stats"
)

// recordedOp is one repository mutation, kept so a scenario can be replayed
// into a fresh repository whose first-ever PMF computation is by
// construction uncached.
type recordedOp struct {
	kind int // 0 perf, 1 defer-wait, 2 reply, 3 publisher rates, 4 lazy info
	id   node.ID
	a, b time.Duration
	n    int
	at   time.Time
}

func (op recordedOp) apply(r *Repository) {
	switch op.kind {
	case 0:
		r.RecordPerf(op.id, op.a, op.b)
	case 1:
		r.RecordDeferWait(op.id, op.a)
	case 2:
		r.RecordReply(op.id, op.a, op.at)
	case 3:
		r.RecordPublisherRates(op.n, op.a)
	case 4:
		r.RecordLazyInfo(op.n, op.a, op.at)
	}
}

// samePMF demands bitwise equality of support and masses.
func samePMF(a, b stats.PMF) bool {
	if a.Len() != b.Len() {
		return false
	}
	as, bs := a.Support(), b.Support()
	for i := range as {
		if as[i] != bs[i] || a.Mass(i) != b.Mass(i) {
			return false
		}
	}
	return true
}

// Property (the ISSUE's cache-coherence contract): across random
// push/evaluate interleavings, the memoized ImmediatePMF/DeferredPMF are
// numerically identical to distributions freshly built by replaying the
// same mutations into a new repository — i.e. every Record* invalidates
// exactly enough, and repeated queries (cache hits) are stable.
func TestCachedPMFsMatchFreshlyBuiltProperty(t *testing.T) {
	base := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	ids := []node.ID{"r0", "r1", "r2"}

	prop := func(seed int64, windowRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		window := 1 + int(windowRaw%12)
		repo := New(window)
		var ops []recordedOp

		binWidths := []time.Duration{0, time.Millisecond, 2 * time.Millisecond, 7 * time.Millisecond}

		check := func() bool {
			bw := binWidths[rng.Intn(len(binWidths))]
			fallbackU := time.Duration(rng.Intn(4000)) * time.Millisecond
			// A fresh repository replaying the full history computes every
			// distribution cold.
			fresh := New(window)
			for _, op := range ops {
				op.apply(fresh)
			}
			for _, id := range ids {
				warm1 := repo.ImmediatePMF(id, bw)
				warm2 := repo.ImmediatePMF(id, bw) // cache hit must be stable
				cold := fresh.ImmediatePMF(id, bw)
				if !samePMF(warm1, cold) || !samePMF(warm2, cold) {
					return false
				}
				dWarm1 := repo.DeferredPMF(id, bw, fallbackU)
				dWarm2 := repo.DeferredPMF(id, bw, fallbackU)
				dCold := fresh.DeferredPMF(id, bw, fallbackU)
				if !samePMF(dWarm1, dCold) || !samePMF(dWarm2, dCold) {
					return false
				}
				// A different fallbackU must not be served from the stale
				// cache entry while the U window is empty.
				other := fallbackU + 13*time.Millisecond
				if !samePMF(repo.DeferredPMF(id, bw, other), fresh.DeferredPMF(id, bw, other)) {
					return false
				}
			}
			return true
		}

		for step := 0; step < 40; step++ {
			op := recordedOp{
				kind: rng.Intn(5),
				id:   ids[rng.Intn(len(ids))],
				a:    time.Duration(rng.Intn(100_000)) * time.Microsecond,
				b:    time.Duration(rng.Intn(30_000)) * time.Microsecond,
				n:    rng.Intn(5),
				at:   base.Add(time.Duration(step) * 250 * time.Millisecond),
			}
			if op.kind == 2 && rng.Intn(4) == 0 {
				op.a = -op.a // exercise the negative-tg clamp
			}
			if op.kind == 3 && op.a == 0 {
				op.a = time.Second // zero tu is rejected; keep the op meaningful
			}
			op.apply(repo)
			ops = append(ops, op)
			// Interleave evaluation with mutation so caches are populated,
			// hit, and invalidated mid-history — not only at the end.
			if rng.Intn(3) == 0 && !check() {
				return false
			}
		}
		return check()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// pmfSnapshot copies a PMF's support and masses: cached PMFs are rebuilt
// in place on invalidation, so comparisons across mutations must snapshot.
type pmfSnapshot struct {
	vals   []time.Duration
	masses []float64
}

func snapshot(p stats.PMF) pmfSnapshot {
	s := pmfSnapshot{vals: p.Support()}
	for i := 0; i < p.Len(); i++ {
		s.masses = append(s.masses, p.Mass(i))
	}
	return s
}

func (s pmfSnapshot) equals(p stats.PMF) bool {
	if len(s.vals) != p.Len() {
		return false
	}
	for i := range s.vals {
		if s.vals[i] != p.Support()[i] || s.masses[i] != p.Mass(i) {
			return false
		}
	}
	return true
}

// Every Record* variant must bump the generation counter and invalidate
// the affected replica's memoized distributions.
func TestGenerationBumpsAndInvalidation(t *testing.T) {
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	r := New(4)
	g0 := r.Generation()
	r.RecordPerf("a", 10*time.Millisecond, time.Millisecond)
	r.RecordDeferWait("a", 100*time.Millisecond)
	r.RecordReply("a", time.Millisecond, now)
	r.RecordPublisherRates(2, time.Second)
	r.RecordLazyInfo(1, time.Second, now)
	if got := r.Generation(); got != g0+5 {
		t.Fatalf("generation advanced %d, want 5", got-g0)
	}

	bw := 2 * time.Millisecond
	p1 := snapshot(r.ImmediatePMF("a", bw))
	// A new service-time sample must change the cached distribution.
	r.RecordPerf("a", 50*time.Millisecond, time.Millisecond)
	if p1.equals(r.ImmediatePMF("a", bw)) {
		t.Fatal("ImmediatePMF unchanged after RecordPerf — stale cache")
	}
	// A new gateway delay shifts the distribution.
	d1 := snapshot(r.DeferredPMF("a", bw, time.Second))
	r.RecordReply("a", 9*time.Millisecond, now.Add(time.Second))
	if d1.equals(r.DeferredPMF("a", bw, time.Second)) {
		t.Fatal("DeferredPMF unchanged after RecordReply — stale cache")
	}
	// A new defer-wait sample reshapes the deferred distribution.
	d2 := snapshot(r.DeferredPMF("a", bw, time.Second))
	r.RecordDeferWait("a", 900*time.Millisecond)
	if d2.equals(r.DeferredPMF("a", bw, time.Second)) {
		t.Fatal("DeferredPMF unchanged after RecordDeferWait — stale cache")
	}
}

// Changing the bin width must bypass the cache entry for the old width.
func TestCacheKeyedByBinWidth(t *testing.T) {
	r := New(4)
	r.RecordPerf("a", 10*time.Millisecond, 3*time.Millisecond)
	r.RecordPerf("a", 11*time.Millisecond, 2*time.Millisecond)
	fine := snapshot(r.ImmediatePMF("a", time.Millisecond))
	coarse := snapshot(r.ImmediatePMF("a", 10*time.Millisecond))
	if fine.equals(r.ImmediatePMF("a", 10*time.Millisecond)) {
		t.Fatal("different bin widths returned the same cached PMF")
	}
	if !fine.equals(r.ImmediatePMF("a", time.Millisecond)) {
		t.Fatal("re-querying the first width lost its result")
	}
	if !coarse.equals(r.ImmediatePMF("a", 10*time.Millisecond)) {
		t.Fatal("re-querying the second width lost its result")
	}
}
