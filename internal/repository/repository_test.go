package repository

import (
	"testing"
	"time"
)

var t0 = time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)

const ms = time.Millisecond

func TestERTNeverReplied(t *testing.T) {
	r := New(10)
	if got := r.ERT("p1", t0); got != NeverReplied {
		t.Fatalf("ERT = %v, want NeverReplied", got)
	}
}

func TestERTAfterReply(t *testing.T) {
	r := New(10)
	r.RecordReply("p1", 2*ms, t0)
	if got := r.ERT("p1", t0.Add(30*ms)); got != 30*ms {
		t.Fatalf("ERT = %v, want 30ms", got)
	}
}

func TestRecordReplyClampsNegativeGateway(t *testing.T) {
	r := New(10)
	r.RecordPerf("p1", 10*ms, 0)
	r.RecordReply("p1", -5*ms, t0)
	p := r.ImmediatePMF("p1", 0)
	if p.Mean() != 10*ms {
		t.Fatalf("negative tg leaked into pmf: mean %v", p.Mean())
	}
}

func TestImmediatePMFNoHistory(t *testing.T) {
	r := New(10)
	if p := r.ImmediatePMF("p1", 0); !p.IsZero() {
		t.Fatal("pmf without history should be zero")
	}
	if r.HasHistory("p1") {
		t.Fatal("HasHistory true without data")
	}
}

func TestImmediatePMFConvolvesSWG(t *testing.T) {
	r := New(10)
	r.RecordPerf("p1", 10*ms, 5*ms)
	r.RecordReply("p1", 2*ms, t0)
	p := r.ImmediatePMF("p1", 0)
	// Single samples: R = 10+5+2 = 17ms with probability 1.
	if p.Len() != 1 || p.Mean() != 17*ms {
		t.Fatalf("pmf = len %d mean %v, want point at 17ms", p.Len(), p.Mean())
	}
	if got := p.CDF(17 * ms); got != 1 {
		t.Fatalf("CDF(17ms) = %v", got)
	}
	if got := p.CDF(16 * ms); got != 0 {
		t.Fatalf("CDF(16ms) = %v", got)
	}
}

func TestImmediatePMFMixesWindow(t *testing.T) {
	r := New(4)
	r.RecordPerf("p1", 10*ms, 0)
	r.RecordPerf("p1", 20*ms, 0)
	p := r.ImmediatePMF("p1", 0)
	// S ∈ {10,20} each 1/2; W = 0 twice; no G yet.
	if p.Mean() != 15*ms {
		t.Fatalf("mean = %v, want 15ms", p.Mean())
	}
	if got := p.CDF(10 * ms); got != 0.5 {
		t.Fatalf("CDF(10ms) = %v, want 0.5", got)
	}
}

func TestWindowEviction(t *testing.T) {
	r := New(2)
	r.RecordPerf("p1", 100*ms, 0)
	r.RecordPerf("p1", 10*ms, 0)
	r.RecordPerf("p1", 10*ms, 0) // evicts the 100ms sample
	p := r.ImmediatePMF("p1", 0)
	if p.Mean() != 10*ms {
		t.Fatalf("mean = %v, want 10ms after eviction", p.Mean())
	}
}

func TestDeferredPMFUsesHistory(t *testing.T) {
	r := New(10)
	r.RecordPerf("s1", 10*ms, 0)
	r.RecordDeferWait("s1", 100*ms)
	p := r.DeferredPMF("s1", 0, 999*ms)
	if p.Mean() != 110*ms {
		t.Fatalf("mean = %v, want 110ms (history, not fallback)", p.Mean())
	}
}

func TestDeferredPMFFallback(t *testing.T) {
	r := New(10)
	r.RecordPerf("s1", 10*ms, 0)
	p := r.DeferredPMF("s1", 0, 500*ms)
	if p.Mean() != 510*ms {
		t.Fatalf("mean = %v, want 510ms (fallback U)", p.Mean())
	}
}

func TestDeferredPMFNoHistoryIsZero(t *testing.T) {
	r := New(10)
	if p := r.DeferredPMF("s1", 0, 500*ms); !p.IsZero() {
		t.Fatal("deferred pmf without S history should be zero")
	}
}

func TestBinWidthBoundsSupport(t *testing.T) {
	r := New(20)
	for i := 0; i < 20; i++ {
		r.RecordPerf("p1", time.Duration(i)*ms+ms, time.Duration(19-i)*ms)
	}
	fine := r.ImmediatePMF("p1", 0)
	coarse := r.ImmediatePMF("p1", 10*ms)
	if coarse.Len() >= fine.Len() {
		t.Fatalf("binning did not reduce support: %d vs %d", coarse.Len(), fine.Len())
	}
}

func TestUpdateRate(t *testing.T) {
	r := New(10)
	if r.UpdateRate() != 0 {
		t.Fatal("rate without data should be 0")
	}
	r.RecordPublisherRates(4, 2*time.Second)
	r.RecordPublisherRates(2, 1*time.Second)
	// λu = 6 updates / 3 s = 2/s.
	if got := r.UpdateRate(); got != 2.0 {
		t.Fatalf("UpdateRate = %v, want 2.0", got)
	}
}

func TestUpdateRateWindowEviction(t *testing.T) {
	r := New(2)
	r.RecordPublisherRates(100, time.Second)
	r.RecordPublisherRates(1, time.Second)
	r.RecordPublisherRates(1, time.Second) // evicts the 100
	if got := r.UpdateRate(); got != 1.0 {
		t.Fatalf("UpdateRate = %v, want 1.0", got)
	}
}

func TestUpdateRateIgnoresZeroDuration(t *testing.T) {
	r := New(10)
	r.RecordPublisherRates(5, 0)
	if r.UpdateRate() != 0 {
		t.Fatal("zero-duration sample should be ignored")
	}
}

func TestTimeSinceLazyUpdate(t *testing.T) {
	r := New(10)
	if _, ok := r.TimeSinceLazyUpdate(t0, 4*time.Second); ok {
		t.Fatal("ok without publisher info")
	}
	// Publisher reported tL=1s at t0; client asks 500ms later:
	// tl = (1s + 0.5s) mod 4s = 1.5s.
	r.RecordLazyInfo(3, time.Second, t0)
	got, ok := r.TimeSinceLazyUpdate(t0.Add(500*ms), 4*time.Second)
	if !ok || got != 1500*ms {
		t.Fatalf("tl = %v ok=%v, want 1.5s", got, ok)
	}
	// Wrap: 4.6s later → (1s+4.6s) mod 4s = 1.6s.
	got, _ = r.TimeSinceLazyUpdate(t0.Add(4600*ms), 4*time.Second)
	if got != 1600*ms {
		t.Fatalf("wrapped tl = %v, want 1.6s", got)
	}
	if r.LastLazyCount() != 3 {
		t.Fatalf("LastLazyCount = %d", r.LastLazyCount())
	}
}

func TestHasPublisherInfo(t *testing.T) {
	r := New(10)
	if r.HasPublisherInfo() {
		t.Fatal("fresh repository claims publisher info")
	}
	r.RecordLazyInfo(0, 0, t0)
	if !r.HasPublisherInfo() {
		t.Fatal("publisher info not recorded")
	}
}

func TestNewPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
