package shard_test

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/consistency"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/shard"
	"aqua/internal/sim"
)

const ms = time.Millisecond

func testService(primaries, secondaries int, lazy time.Duration) core.ServiceConfig {
	return core.ServiceConfig{
		Primaries:    primaries,
		Secondaries:  secondaries,
		LazyInterval: lazy,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}
}

func clientTemplate(staleness int) client.Config {
	return client.Config{
		Spec:    qos.Spec{Staleness: staleness, Deadline: 500 * ms, MinProb: 0.5},
		Methods: qos.NewMethods("Get", "Version"),
	}
}

// routerHarness registers a Router as a runtime node and runs the test's
// driver once the node context exists — the same shape as a client Driver.
type routerHarness struct {
	r     *shard.Router
	drive func(ctx node.Context)
}

func (h *routerHarness) Init(ctx node.Context) {
	h.r.Init(ctx)
	h.drive(ctx)
}
func (h *routerHarness) Recv(from node.ID, m node.Message) { h.r.Recv(from, m) }

// deployRouted stands up n shards plus a router under node ID "c00".
func deployRouted(t *testing.T, seed int64, n int, m *shard.Map, staleness int,
	drive func(ctx node.Context, r *shard.Router)) (*sim.Scheduler, *core.ShardedDeployment, *shard.Router) {
	t.Helper()
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 500 * time.Microsecond, Max: 2 * ms}))
	svc := testService(3, 1, 300*ms)
	svc.ExtraClients = []node.ID{"c00"}
	sd, err := core.DeployShards(rt, svc, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := shard.New(shard.Config{Shards: sd.Infos, Map: m, Client: clientTemplate(staleness)})
	rt.Register("c00", &routerHarness{r: r, drive: func(ctx node.Context) { drive(ctx, r) }})
	rt.Start()
	return s, sd, r
}

// keyInRange finds a small key whose ring position lands inside [lo, hi).
func keyInRange(t *testing.T, lo, hi uint64) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("k%d", i)
		if h := uint64(shard.Hash(k)); h >= lo && h < hi {
			return k
		}
	}
	t.Fatal("no key found in range")
	return ""
}

func TestRouterRoutesByKey(t *testing.T) {
	half := shard.RingEnd / 2
	k0 := keyInRange(t, 0, half)
	k1 := keyInRange(t, half, shard.RingEnd)

	var reads [2]client.Result
	s, sd, r := deployRouted(t, 11, 2, nil, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			r.Invoke("Set", []byte(k0+"=a"), func(client.Result) {
				r.Invoke("Get", []byte(k0), func(res client.Result) { reads[0] = res })
			})
			r.Invoke("Set", []byte(k1+"=b"), func(client.Result) {
				r.Invoke("Get", []byte(k1), func(res client.Result) { reads[1] = res })
			})
		})
	})
	s.RunFor(5 * time.Second)

	for i, want := range []string{"a", "b"} {
		if reads[i].Err != "" || string(reads[i].Payload) != want {
			t.Fatalf("read %d = %+v, want %q", i, reads[i], want)
		}
		if owner := sd.Owner(reads[i].Replica); owner != i {
			t.Fatalf("read %d served by %s (shard %d), want shard %d", i, reads[i].Replica, owner, i)
		}
	}
	// Each shard's sequencer applied exactly its own key's update: the
	// keyspace is actually partitioned, not replicated.
	for i, d := range sd.Shards {
		if got := d.Replicas[d.Sequencer].Applied(); got != 1 {
			t.Fatalf("shard %d applied %d updates, want 1", i, got)
		}
	}
	if r.Outstanding(0) != 0 || r.Outstanding(1) != 0 {
		t.Fatalf("outstanding = %d, %d after completion", r.Outstanding(0), r.Outstanding(1))
	}
}

func TestRouterSingleShardPassthrough(t *testing.T) {
	var read client.Result
	s, sd, _ := deployRouted(t, 12, 1, nil, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			r.Invoke("Set", []byte("x=1"), func(client.Result) {
				r.Invoke("Get", []byte("x"), func(res client.Result) { read = res })
			})
		})
	})
	s.RunFor(5 * time.Second)

	if read.Err != "" || string(read.Payload) != "1" {
		t.Fatalf("read = %+v", read)
	}
	// A single-shard deployment keeps the historical unprefixed node IDs —
	// the property the byte-identity pin in internal/experiment relies on.
	if sd.Shards[0].Sequencer != "p00" {
		t.Fatalf("single-shard sequencer = %s, want p00", sd.Shards[0].Sequencer)
	}
}

// TestRouterBoundaryKey routes a key whose hash sits exactly on a range
// boundary: the boundary belongs to the range starting there, so the key
// must land on the range's owner — through the real dispatch path, not just
// the map arithmetic.
func TestRouterBoundaryKey(t *testing.T) {
	key := "k7"
	h := uint64(shard.Hash(key))
	base := shard.NewUniform(2)
	other := 1 - base.OwnerOf(shard.Hash(key))
	m, err := base.Move(h, h+1, other)
	if err != nil {
		t.Fatal(err)
	}

	var read client.Result
	s, sd, _ := deployRouted(t, 13, 2, m, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			r.Invoke("Set", []byte(key+"=edge"), func(client.Result) {
				r.Invoke("Get", []byte(key), func(res client.Result) { read = res })
			})
		})
	})
	s.RunFor(5 * time.Second)

	if read.Err != "" || string(read.Payload) != "edge" {
		t.Fatalf("read = %+v", read)
	}
	if owner := sd.Owner(read.Replica); owner != other {
		t.Fatalf("boundary key served by shard %d, want %d", owner, other)
	}
	if got := sd.Shards[other].Replicas[sd.Shards[other].Sequencer].Applied(); got != 1 {
		t.Fatalf("owning shard applied %d updates, want 1", got)
	}
}

// TestRouterShardMapVersionBump covers routing across a shard-map version
// bump delivered as a wire announce: stale versions are ignored, newer ones
// change where subsequent requests land.
func TestRouterShardMapVersionBump(t *testing.T) {
	half := shard.RingEnd / 2
	key := keyInRange(t, 0, half)
	bumped, err := shard.NewUniform(2).Move(0, half, 1)
	if err != nil {
		t.Fatal(err)
	}

	var before, after int
	var sd *core.ShardedDeployment
	s, deployed, r := deployRouted(t, 14, 2, nil, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			r.Invoke("Set", []byte(key+"=1"), func(res client.Result) {
				before = sd.Owner(res.Replica)
				// A stale announce (same version as held) must not install.
				r.Recv("p00", shard.NewUniform(2).Announce())
				if got := r.ShardMap().Version(); got != 0 {
					t.Errorf("stale announce bumped version to %d", got)
				}
				// The real bump re-homes the key's range to shard 1.
				r.Recv("p00", bumped.Announce())
				if got := r.ShardMap().Version(); got != 1 {
					t.Errorf("announce not installed, version %d", got)
				}
				r.Invoke("Set", []byte(key+"=2"), func(res client.Result) {
					after = sd.Owner(res.Replica)
				})
			})
		})
	})
	sd = deployed
	s.RunFor(5 * time.Second)

	if before != 0 {
		t.Fatalf("pre-bump update handled by shard %d, want 0", before)
	}
	if after != 1 {
		t.Fatalf("post-bump update handled by shard %d, want 1", after)
	}

	// Announces that fail validation are dropped without changing the map.
	r.Recv("p00", consistency.ShardMapAnnounce{Version: 9, Shards: 3,
		Starts: []uint32{0}, Owners: []uint32{2}})
	if got := r.ShardMap().Version(); got != 1 {
		t.Fatalf("announce with wrong shard count installed, version %d", got)
	}
}

// TestRouterReadAllFanOut covers the cross-shard read path: one read fanned
// to every shard, each shard answering from its own replicas with its own
// staleness accounting — here visible as per-shard Version counters that
// reflect only the updates each shard owns.
func TestRouterReadAllFanOut(t *testing.T) {
	half := shard.RingEnd / 2
	k0 := keyInRange(t, 0, half)
	k0b := keyInRange(t, uint64(shard.Hash(k0))+1, half)
	k1 := keyInRange(t, half, shard.RingEnd)

	versions := make([]client.Result, 2)
	var answered int
	s, sd, r := deployRouted(t, 16, 2, nil, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			// Two updates land on shard 0, one on shard 1.
			r.Invoke("Set", []byte(k0+"=a"), func(client.Result) {
				r.Invoke("Set", []byte(k0b+"=b"), func(client.Result) {
					r.Invoke("Set", []byte(k1+"=c"), func(client.Result) {
						r.ReadAll("Version", nil, func(sh int, res client.Result) {
							versions[sh] = res
							answered++
						})
					})
				})
			})
		})
	})
	s.RunFor(5 * time.Second)

	if answered != 2 {
		t.Fatalf("ReadAll answered %d shards, want 2", answered)
	}
	for sh, want := range []string{"v2", "v1"} {
		if versions[sh].Err != "" || string(versions[sh].Payload) != want {
			t.Fatalf("shard %d version = %+v, want %q", sh, versions[sh], want)
		}
		if owner := sd.Owner(versions[sh].Replica); owner != sh {
			t.Fatalf("shard %d answer served by %s (shard %d)", sh, versions[sh].Replica, owner)
		}
	}
	if r.Outstanding(0) != 0 || r.Outstanding(1) != 0 {
		t.Fatalf("outstanding = %d, %d after fan-out", r.Outstanding(0), r.Outstanding(1))
	}
}

// TestRouterMoveReadYourWrites runs a live range move with a write still in
// flight and a read arriving mid-migration. The read buffers, is released to
// the new owner after install, and must observe the pre-move write —
// read-your-writes across the re-homing.
func TestRouterMoveReadYourWrites(t *testing.T) {
	half := shard.RingEnd / 2
	key := keyInRange(t, 0, half)

	var installed *shard.Map
	var read client.Result
	var moveErr error
	s, sd, r := deployRouted(t, 15, 2, nil, 0, func(ctx node.Context, r *shard.Router) {
		ctx.SetTimer(10*ms, func() {
			// Write is still in flight when Move starts: the drain phase must
			// wait for it before copying.
			r.Invoke("Set", []byte(key+"=v1"), nil)
			moveErr = r.Move(0, half, 1, func(m *shard.Map) { installed = m })
			if !r.Migrating() {
				t.Error("migration not in flight after Move")
			}
			// A second move while one is running must be refused.
			if err := r.Move(half, shard.RingEnd, 0, nil); err == nil {
				t.Error("concurrent migration accepted")
			}
			// This read arrives for the just-moved key mid-migration.
			r.Invoke("Get", []byte(key), func(res client.Result) { read = res })
		})
	})
	s.RunFor(10 * time.Second)

	if moveErr != nil {
		t.Fatal(moveErr)
	}
	if installed == nil || installed.Version() != 1 {
		t.Fatalf("move did not install (map %+v)", installed)
	}
	if r.Migrating() {
		t.Fatal("migration still marked in flight")
	}
	if read.Err != "" || string(read.Payload) != "v1" {
		t.Fatalf("post-move read = %+v, want the pre-move write", read)
	}
	if owner := sd.Owner(read.Replica); owner != 1 {
		t.Fatalf("post-move read served by shard %d, want the new owner 1", owner)
	}
	if got := r.ShardMap().Owner(key); got != 1 {
		t.Fatalf("router map owner = %d, want 1", got)
	}
	// The copy gave the destination shard a GSN for the key: its sequencer
	// applied exactly the migrated write.
	d1 := sd.Shards[1]
	if got := d1.Replicas[d1.Sequencer].Applied(); got != 1 {
		t.Fatalf("destination shard applied %d updates, want 1", got)
	}
}
