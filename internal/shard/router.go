package shard

import (
	"fmt"
	"sort"

	"aqua/internal/client"
	"aqua/internal/consistency"
	"aqua/internal/node"
)

// Config describes a shard router.
type Config struct {
	// Shards lists each shard's client-visible service description, indexed
	// by shard number (the Map's owner values).
	Shards []client.ServiceInfo
	// Map is the initial shard map (default: uniform over len(Shards)).
	Map *Map
	// Client is the per-shard gateway template: QoS spec, read-only method
	// registry, selector, window size, substrate and retry tuning. The
	// router instantiates one client gateway per shard from it (Service is
	// overwritten per shard), so replica selection runs independently per
	// shard exactly as an unsharded client would run it.
	Client client.Config
	// Key extracts the routing key from an invocation. The default takes
	// the payload up to the first '=' (the KV application's "key=value"
	// update and bare-key read convention).
	Key func(method string, payload []byte) string
	// ReadMethod/UpdateMethod name the operations the migration protocol
	// uses to copy a key between shards (defaults "Get"/"Set").
	ReadMethod   string
	UpdateMethod string
}

// bufferedCall is one invocation held back while its key range migrates.
type bufferedCall struct {
	method  string
	payload []byte
	cb      func(client.Result)
}

// migration is one in-flight range move: freeze → drain → copy → install.
type migration struct {
	lo, hi   uint64
	from, to int
	next     *Map
	// draining is true until the source shard's outstanding count reaches
	// zero; then the copy phase reads every known key in the range from the
	// source and writes it through the destination.
	draining bool
	copies   int
	buffered []bufferedCall
	onDone   func(*Map)
}

// Router fronts a sharded service: it owns one client gateway per shard —
// all sharing the router's single node identity — and routes every
// invocation to the shard owning its key. It implements node.Node; register
// it where an unsharded experiment would register a client gateway.
//
// With one shard the router is a transparent shim: every message flows
// through gateway 0 exactly as it would through a bare client.Gateway, so a
// single-shard deployment reproduces the unsharded runs byte for byte (the
// pin test in internal/experiment holds this).
type Router struct {
	cfg Config
	ctx node.Context
	m   *Map

	gws   []*client.Gateway
	owner map[node.ID]int // replica ID -> shard index

	// outstanding counts in-flight invocations per shard (callbacks always
	// fire, so the counts converge); the migration drain waits on it.
	outstanding []int
	// keys records every key this router has routed an update for — the
	// key inventory a range migration copies. Bounded by the workload's key
	// universe, which the sharding scenarios keep small.
	keys map[string]struct{}

	mig *migration
}

var _ node.Node = (*Router)(nil)

// New creates a router and its per-shard gateways.
func New(cfg Config) *Router {
	if len(cfg.Shards) == 0 {
		panic("shard: Config.Shards is required")
	}
	if cfg.Map == nil {
		cfg.Map = NewUniform(len(cfg.Shards))
	}
	if cfg.Map.Shards() != len(cfg.Shards) {
		panic(fmt.Sprintf("shard: map routes %d shards, config lists %d", cfg.Map.Shards(), len(cfg.Shards)))
	}
	if cfg.Key == nil {
		cfg.Key = DefaultKey
	}
	if cfg.ReadMethod == "" {
		cfg.ReadMethod = "Get"
	}
	if cfg.UpdateMethod == "" {
		cfg.UpdateMethod = "Set"
	}
	r := &Router{
		cfg:         cfg,
		m:           cfg.Map,
		owner:       make(map[node.ID]int),
		outstanding: make([]int, len(cfg.Shards)),
		keys:        make(map[string]struct{}),
	}
	for i, info := range cfg.Shards {
		gcfg := cfg.Client
		gcfg.Service = info
		if len(cfg.Shards) > 1 {
			gcfg.Obs = gcfg.Obs.WithLabels("shard", fmt.Sprint(i))
		}
		r.gws = append(r.gws, client.New(gcfg))
		for _, id := range info.Primaries {
			r.owner[id] = i
		}
		for _, id := range info.Secondaries {
			r.owner[id] = i
		}
	}
	return r
}

// DefaultKey is the KV convention: the payload up to the first '=' (whole
// payload for reads, which carry the bare key).
func DefaultKey(method string, payload []byte) string {
	for i, c := range payload {
		if c == '=' {
			return string(payload[:i])
		}
	}
	return string(payload)
}

// Init implements node.Node: it binds every per-shard gateway to the
// router's node context. Each gateway builds its own substrate stack; the
// router demultiplexes inbound traffic to the right stack by sender (shard
// replica ID sets are disjoint).
func (r *Router) Init(ctx node.Context) {
	r.ctx = ctx
	for _, gw := range r.gws {
		gw.Init(ctx)
	}
}

// Recv implements node.Node.
func (r *Router) Recv(from node.ID, m node.Message) {
	if a, ok := m.(consistency.ShardMapAnnounce); ok {
		r.onAnnounce(a)
		return
	}
	if i, ok := r.owner[from]; ok {
		r.gws[i].Recv(from, m)
		return
	}
	// Unknown senders fall through to shard 0's stack, which logs and
	// ignores anything it cannot handle — the bare gateway's behaviour.
	r.gws[0].Recv(from, m)
}

// onAnnounce installs a remotely distributed shard map (live clusters push
// these); stale or duplicate versions are ignored.
func (r *Router) onAnnounce(a consistency.ShardMapAnnounce) {
	m, err := FromAnnounce(a)
	if err != nil {
		r.ctx.Logf("shard: rejecting map announce: %v", err)
		return
	}
	if m.Shards() != len(r.gws) {
		r.ctx.Logf("shard: rejecting map announce: %d shards, have %d gateways", m.Shards(), len(r.gws))
		return
	}
	if m.Version() <= r.m.Version() {
		return
	}
	r.m = m
}

// ShardMap returns the router's current map.
func (r *Router) ShardMap() *Map { return r.m }

// Gateway exposes shard i's client gateway (metrics, tests).
func (r *Router) Gateway(i int) *client.Gateway { return r.gws[i] }

// Migrating reports whether a range move is in flight.
func (r *Router) Migrating() bool { return r.mig != nil }

// Outstanding returns the in-flight invocation count routed to shard i.
func (r *Router) Outstanding(i int) int { return r.outstanding[i] }

// Invoke routes one invocation to the shard owning its key. During a range
// migration, invocations for keys inside the moving interval are buffered
// and released — routed by the post-move map — once the new owner has the
// range, preserving per-key sequential consistency across the move. All
// other keys route immediately.
func (r *Router) Invoke(method string, payload []byte, cb func(client.Result)) {
	key := r.cfg.Key(method, payload)
	h := uint64(Hash(key))
	if r.mig != nil && h >= r.mig.lo && h < r.mig.hi {
		r.mig.buffered = append(r.mig.buffered, bufferedCall{method: method, payload: payload, cb: cb})
		return
	}
	r.dispatch(r.m.OwnerOf(uint32(h)), key, method, payload, cb)
}

// dispatch sends one invocation through shard i's gateway, tracking the
// in-flight count and the update-key inventory.
func (r *Router) dispatch(i int, key, method string, payload []byte, cb func(client.Result)) {
	if !r.cfg.Client.Methods.IsReadOnly(method) {
		r.keys[key] = struct{}{}
	}
	r.outstanding[i]++
	r.gws[i].Invoke(method, payload, func(res client.Result) {
		r.outstanding[i]--
		if cb != nil {
			cb(res)
		}
		r.maybeDrained()
	})
}

// ReadAll fans a read out to every shard — the cross-shard read path — and
// reports each shard's result (with the serving replica) as it arrives.
// Staleness accounting stays per shard: each gateway enforces and observes
// its own shard's <a, d, Pc(d)> spec independently.
func (r *Router) ReadAll(method string, payload []byte, cb func(shard int, res client.Result)) {
	for i := range r.gws {
		i := i
		r.outstanding[i]++
		r.gws[i].Invoke(method, payload, func(res client.Result) {
			r.outstanding[i]--
			if cb != nil {
				cb(i, res)
			}
			r.maybeDrained()
		})
	}
}

// Move re-homes the hash interval [lo, hi) to shard `to`, live:
//
//  1. Freeze — invocations for keys in the interval buffer in the router.
//  2. Drain — wait until the source shard has zero in-flight invocations
//     from this router, so every pre-move update has completed (and thus
//     holds a GSN in the source shard's order).
//  3. Copy — read each known key in the interval from the source shard at
//     staleness 0 (the committed frontier) and write it through the
//     destination shard, giving it a GSN in the destination's order.
//  4. Install — adopt the version-bumped map and release the buffered
//     invocations to the new owner.
//
// Per-key sequential consistency holds across the move: every write a
// client completed before Move reaches the destination (step 3 reads the
// frontier after step 2's quiesce), and no read of a moving key is served
// between freeze and install, so a released read observes a state at least
// as fresh as the strongest pre-move write. onDone (optional) receives the
// installed map. hi may be ringEnd (1<<32) to address the ring's top.
func (r *Router) Move(lo, hi uint64, to int, onDone func(*Map)) error {
	if r.mig != nil {
		return fmt.Errorf("shard: a migration is already in flight")
	}
	from, ok := r.m.RangeOwner(lo, hi)
	if !ok {
		return fmt.Errorf("shard: Move: [%d, %d) is not owned by a single shard", lo, hi)
	}
	if from == to {
		return fmt.Errorf("shard: Move: [%d, %d) already owned by shard %d", lo, hi, to)
	}
	next, err := r.m.Move(lo, hi, to)
	if err != nil {
		return err
	}
	r.mig = &migration{lo: lo, hi: hi, from: from, to: to, next: next, draining: true, onDone: onDone}
	r.maybeDrained()
	return nil
}

// maybeDrained advances a draining migration once the source shard
// quiesces. Called after every completion callback.
func (r *Router) maybeDrained() {
	mig := r.mig
	if mig == nil || !mig.draining || r.outstanding[mig.from] != 0 {
		return
	}
	mig.draining = false
	r.startCopy(mig)
}

// startCopy runs the migration's copy phase: known keys in the moving
// interval, in sorted order (map iteration order must not leak into the
// deterministic simulation), each read from the source frontier and written
// through the destination.
func (r *Router) startCopy(mig *migration) {
	var moving []string
	for key := range r.keys {
		if h := uint64(Hash(key)); h >= mig.lo && h < mig.hi {
			moving = append(moving, key)
		}
	}
	sort.Strings(moving)
	if len(moving) == 0 {
		r.install(mig)
		return
	}
	mig.copies = len(moving)
	for _, key := range moving {
		key := key
		// Staleness 0: the source's committed frontier, i.e. every update
		// that completed before the drain finished.
		r.gws[mig.from].InvokeStale(r.cfg.ReadMethod, []byte(key), 0, func(res client.Result) {
			if res.Err != "" || len(res.Payload) == 0 {
				// Key unknown at the source (never written, or written and
				// deleted); nothing to copy.
				r.copyDone(mig)
				return
			}
			val := append(append([]byte(key), '='), res.Payload...)
			r.gws[mig.to].Invoke(r.cfg.UpdateMethod, val, func(client.Result) {
				r.copyDone(mig)
			})
		})
	}
}

func (r *Router) copyDone(mig *migration) {
	mig.copies--
	if mig.copies == 0 {
		r.install(mig)
	}
}

// install adopts the post-move map and replays the buffered invocations
// against it (they route to the new owner).
func (r *Router) install(mig *migration) {
	r.m = mig.next
	r.mig = nil
	for _, b := range mig.buffered {
		r.Invoke(b.method, b.payload, b.cb)
	}
	if mig.onDone != nil {
		mig.onDone(r.m)
	}
}

// RingEnd is the exclusive upper bound of the hash ring — pass it as Move's
// hi to address the ring's top end.
const RingEnd = ringEnd
