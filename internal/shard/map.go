// Package shard partitions the keyspace across independent primary/secondary
// group pairs (DESIGN.md §12). A Map assigns contiguous ranges of a 32-bit
// hash ring to shard indices; a Router fronts one client gateway per shard,
// routes each invocation to the owning shard, and re-homes ranges live (the
// split/move protocol) without violating per-key sequential consistency.
//
// The paper's framework runs one sequencer, so total update throughput is
// bounded by a single ordering pipeline; sharding multiplies that ceiling by
// running one full framework instance per key range, with per-shard
// <a, d, Pc(d)> replica selection intact inside each shard.
package shard

import (
	"fmt"
	"sort"

	"aqua/internal/consistency"
)

// ringEnd is one past the highest ring position: ranges are half-open
// [lo, hi) intervals of hash values with hi <= ringEnd.
const ringEnd = uint64(1) << 32

// Hash maps a key onto the ring: FNV-1a, 32-bit. Exported so every routing
// layer (Router, the multi-shard workload engine, tests crafting boundary
// keys) agrees on placement.
func Hash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

// Range is one contiguous hash interval and its owning shard.
type Range struct {
	Lo    uint64 // inclusive
	Hi    uint64 // exclusive; <= ringEnd
	Owner int
}

// Map is a versioned, immutable assignment of hash ranges to shard indices.
// Mutation (Move) returns a new Map with the version bumped; routers install
// the new value atomically from their own callback thread, so a version is
// either fully visible or not at all.
type Map struct {
	version uint64
	starts  []uint32 // ascending range starts; starts[0] == 0
	owners  []int    // owners[i] owns [starts[i], starts[i+1])
	shards  int      // total shard count (owners are < shards)
}

// NewUniform builds version-0 map splitting the ring into n equal ranges,
// range i owned by shard i.
func NewUniform(n int) *Map {
	if n < 1 {
		panic("shard: NewUniform needs at least 1 shard")
	}
	m := &Map{shards: n}
	step := ringEnd / uint64(n)
	for i := 0; i < n; i++ {
		m.starts = append(m.starts, uint32(uint64(i)*step))
		m.owners = append(m.owners, i)
	}
	return m
}

// Version returns the map's version; Move bumps it by one.
func (m *Map) Version() uint64 { return m.version }

// Shards returns the shard count the map routes across.
func (m *Map) Shards() int { return m.shards }

// Owner returns the shard index owning key.
func (m *Map) Owner(key string) int { return m.OwnerOf(Hash(key)) }

// OwnerOf returns the shard index owning ring position h. A position
// exactly on a range boundary belongs to the range starting there (lower
// bounds are inclusive, upper exclusive).
func (m *Map) OwnerOf(h uint32) int {
	// Greatest i with starts[i] <= h; starts[0] == 0 guarantees i >= 0.
	i := sort.Search(len(m.starts), func(i int) bool { return m.starts[i] > h }) - 1
	return m.owners[i]
}

// Ranges returns the map's ranges in ring order.
func (m *Map) Ranges() []Range {
	out := make([]Range, len(m.starts))
	for i := range m.starts {
		hi := ringEnd
		if i+1 < len(m.starts) {
			hi = uint64(m.starts[i+1])
		}
		out[i] = Range{Lo: uint64(m.starts[i]), Hi: hi, Owner: m.owners[i]}
	}
	return out
}

// RangeOwner reports the single shard owning the whole interval [lo, hi),
// or ok=false if the interval spans an ownership boundary.
func (m *Map) RangeOwner(lo, hi uint64) (owner int, ok bool) {
	if lo >= hi || hi > ringEnd {
		return 0, false
	}
	owner = m.OwnerOf(uint32(lo))
	for _, r := range m.Ranges() {
		if r.Lo < hi && lo < r.Hi && r.Owner != owner {
			return 0, false
		}
	}
	return owner, true
}

// Move returns a copy of the map with the interval [lo, hi) re-homed to
// shard `to` and the version bumped. Adjacent ranges with equal owners are
// coalesced, so a move that restores uniform ownership also restores the
// compact representation.
func (m *Map) Move(lo, hi uint64, to int) (*Map, error) {
	if lo >= hi || hi > ringEnd {
		return nil, fmt.Errorf("shard: Move: bad interval [%d, %d)", lo, hi)
	}
	if to < 0 || to >= m.shards {
		return nil, fmt.Errorf("shard: Move: shard %d out of range (have %d)", to, m.shards)
	}
	// Collect candidate boundaries: existing starts plus the interval ends.
	bounds := append([]uint32(nil), m.starts...)
	bounds = append(bounds, uint32(lo))
	if hi < ringEnd {
		bounds = append(bounds, uint32(hi))
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	next := &Map{version: m.version + 1, shards: m.shards}
	for i, b := range bounds {
		if i > 0 && b == bounds[i-1] {
			continue // dedup
		}
		owner := m.OwnerOf(b)
		if uint64(b) >= lo && uint64(b) < hi {
			owner = to
		}
		if n := len(next.owners); n > 0 && next.owners[n-1] == owner {
			continue // coalesce
		}
		next.starts = append(next.starts, b)
		next.owners = append(next.owners, owner)
	}
	return next, nil
}

// Announce renders the map as its wire message, for propagating shard-map
// versions to live-cluster routers.
func (m *Map) Announce() consistency.ShardMapAnnounce {
	a := consistency.ShardMapAnnounce{
		Version: m.version,
		Shards:  uint32(m.shards),
		Starts:  append([]uint32(nil), m.starts...),
	}
	for _, o := range m.owners {
		a.Owners = append(a.Owners, uint32(o))
	}
	return a
}

// FromAnnounce reconstructs a Map from its wire form, validating the
// invariants the routing code relies on (sorted starts beginning at 0,
// owners in range, equal lengths).
func FromAnnounce(a consistency.ShardMapAnnounce) (*Map, error) {
	if len(a.Starts) == 0 || len(a.Starts) != len(a.Owners) {
		return nil, fmt.Errorf("shard: announce: %d starts vs %d owners", len(a.Starts), len(a.Owners))
	}
	if a.Starts[0] != 0 {
		return nil, fmt.Errorf("shard: announce: first range starts at %d, want 0", a.Starts[0])
	}
	if a.Shards == 0 {
		return nil, fmt.Errorf("shard: announce: zero shard count")
	}
	m := &Map{version: a.Version, shards: int(a.Shards)}
	for i, s := range a.Starts {
		if i > 0 && s <= a.Starts[i-1] {
			return nil, fmt.Errorf("shard: announce: starts not strictly ascending at %d", i)
		}
		if a.Owners[i] >= a.Shards {
			return nil, fmt.Errorf("shard: announce: owner %d out of range (have %d)", a.Owners[i], a.Shards)
		}
		m.starts = append(m.starts, s)
		m.owners = append(m.owners, int(a.Owners[i]))
	}
	return m, nil
}
