package shard

import (
	"testing"
)

func TestHashStable(t *testing.T) {
	// FNV-1a reference values; the ring layout (and therefore every routing
	// decision in recorded runs) depends on these never changing.
	cases := map[string]uint32{
		"":   2166136261,
		"a":  0xe40c292c,
		"k0": 0x973d7f2e,
	}
	for key, want := range cases {
		if got := Hash(key); got != want {
			t.Errorf("Hash(%q) = %#x, want %#x", key, got, want)
		}
	}
}

func TestNewUniform(t *testing.T) {
	m := NewUniform(4)
	if m.Version() != 0 || m.Shards() != 4 {
		t.Fatalf("version=%d shards=%d", m.Version(), m.Shards())
	}
	rs := m.Ranges()
	if len(rs) != 4 {
		t.Fatalf("ranges = %v", rs)
	}
	if rs[0].Lo != 0 || rs[3].Hi != ringEnd {
		t.Fatalf("ring not covered: %v", rs)
	}
	for i, r := range rs {
		if r.Owner != i {
			t.Fatalf("range %d owned by %d", i, r.Owner)
		}
		if i > 0 && rs[i-1].Hi != r.Lo {
			t.Fatalf("gap between ranges %d and %d: %v", i-1, i, rs)
		}
	}
}

func TestOwnerOfBoundary(t *testing.T) {
	m := NewUniform(2)
	half := uint32(ringEnd / 2)
	// A position exactly on a range boundary belongs to the range starting
	// there: lower bounds inclusive, upper exclusive.
	if got := m.OwnerOf(half - 1); got != 0 {
		t.Fatalf("OwnerOf(half-1) = %d, want 0", got)
	}
	if got := m.OwnerOf(half); got != 1 {
		t.Fatalf("OwnerOf(half) = %d, want 1 (boundary is inclusive below)", got)
	}
	if got := m.OwnerOf(0); got != 0 {
		t.Fatalf("OwnerOf(0) = %d, want 0", got)
	}
	if got := m.OwnerOf(^uint32(0)); got != 1 {
		t.Fatalf("OwnerOf(max) = %d, want 1", got)
	}
}

func TestMoveAndCoalesce(t *testing.T) {
	m := NewUniform(2)
	half := ringEnd / 2

	moved, err := m.Move(100, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Version() != 1 {
		t.Fatalf("version = %d, want 1", moved.Version())
	}
	if got := moved.OwnerOf(100); got != 1 {
		t.Fatalf("moved lo owned by %d", got)
	}
	if got := moved.OwnerOf(199); got != 1 {
		t.Fatalf("moved interior owned by %d", got)
	}
	if got := moved.OwnerOf(200); got != 0 {
		t.Fatalf("position past hi owned by %d", got)
	}
	if got := moved.OwnerOf(99); got != 0 {
		t.Fatalf("position before lo owned by %d", got)
	}
	// The source map is immutable.
	if got := m.OwnerOf(150); got != 0 {
		t.Fatalf("original map mutated: OwnerOf(150) = %d", got)
	}

	// Moving the range back restores uniform ownership and the compact
	// two-range representation.
	back, err := moved.Move(100, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != 2 {
		t.Fatalf("version = %d, want 2", back.Version())
	}
	if rs := back.Ranges(); len(rs) != 2 || rs[0].Hi != half {
		t.Fatalf("not coalesced: %v", rs)
	}

	// Top-of-ring move: hi == ringEnd.
	top, err := m.Move(half+5, ringEnd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.OwnerOf(^uint32(0)); got != 0 {
		t.Fatalf("top of ring owned by %d after move", got)
	}

	if _, err := m.Move(200, 100, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := m.Move(0, 10, 7); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestRangeOwner(t *testing.T) {
	m := NewUniform(2)
	half := ringEnd / 2
	if owner, ok := m.RangeOwner(0, half); !ok || owner != 0 {
		t.Fatalf("RangeOwner(0, half) = %d, %v", owner, ok)
	}
	if owner, ok := m.RangeOwner(half, ringEnd); !ok || owner != 1 {
		t.Fatalf("RangeOwner(half, end) = %d, %v", owner, ok)
	}
	if _, ok := m.RangeOwner(half-1, half+1); ok {
		t.Fatal("straddling interval reported a single owner")
	}
	if _, ok := m.RangeOwner(10, 10); ok {
		t.Fatal("empty interval accepted")
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	m, err := NewUniform(3).Move(1000, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromAnnounce(m.Announce())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != m.Version() || got.Shards() != m.Shards() {
		t.Fatalf("round trip lost header: %+v vs %+v", got, m)
	}
	for _, h := range []uint32{0, 999, 1000, 1999, 2000, 1 << 31, ^uint32(0)} {
		if got.OwnerOf(h) != m.OwnerOf(h) {
			t.Fatalf("round trip changed owner of %d: %d vs %d", h, got.OwnerOf(h), m.OwnerOf(h))
		}
	}
}

func TestFromAnnounceRejectsMalformed(t *testing.T) {
	base := NewUniform(2).Announce()
	cases := []struct {
		name   string
		mutate func(a *[]uint32, o *[]uint32, shards *uint32)
	}{
		{"first start nonzero", func(s, o *[]uint32, _ *uint32) { (*s)[0] = 1 }},
		{"unsorted starts", func(s, o *[]uint32, _ *uint32) { (*s)[1] = 0 }},
		{"owner out of range", func(s, o *[]uint32, _ *uint32) { (*o)[1] = 9 }},
		{"length mismatch", func(s, o *[]uint32, _ *uint32) { *o = (*o)[:1] }},
		{"zero shards", func(s, o *[]uint32, n *uint32) { *n = 0 }},
	}
	for _, tc := range cases {
		a := base
		a.Starts = append([]uint32(nil), base.Starts...)
		a.Owners = append([]uint32(nil), base.Owners...)
		tc.mutate(&a.Starts, &a.Owners, &a.Shards)
		if _, err := FromAnnounce(a); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
