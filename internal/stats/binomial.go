package stats

import "math"

// BinomialCI holds a confidence interval for a binomial proportion.
type BinomialCI struct {
	Point float64 // observed proportion successes/n
	Lo    float64
	Hi    float64
}

// BinomialConfidence computes a confidence interval for the success
// probability of a binomial with the given number of successes out of n
// trials. The paper computes its 95 % intervals "under the assumption that
// the number of timing failures follows a binomial distribution"; we use
// the Wilson score interval, which is well-behaved for the small
// proportions that timing failures produce (a normal-approximation interval
// collapses to a zero-width interval at 0 failures).
//
// conf is the confidence level, e.g. 0.95. n must be positive.
func BinomialConfidence(successes, n int, conf float64) BinomialCI {
	if n <= 0 {
		return BinomialCI{}
	}
	p := float64(successes) / float64(n)
	z := normalQuantile(0.5 + conf/2)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi := center-half, center+half
	if lo < 0 || successes == 0 {
		lo = 0
	}
	if hi > 1 || successes == n {
		hi = 1
	}
	return BinomialCI{Point: p, Lo: lo, Hi: hi}
}

// normalQuantile returns Φ⁻¹(p) using the Acklam rational approximation,
// accurate to about 1.15e-9 over (0,1).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
