package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const eps = 1e-9

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestFromSamplesEmpty(t *testing.T) {
	p := FromSamples(nil)
	if !p.IsZero() || p.Len() != 0 {
		t.Fatal("empty samples should give zero PMF")
	}
	if p.CDF(time.Hour) != 0 {
		t.Fatal("zero PMF CDF must be 0 everywhere")
	}
}

func TestFromSamplesMergesDuplicates(t *testing.T) {
	p := FromSamples([]time.Duration{time.Millisecond, time.Millisecond, 3 * time.Millisecond, time.Millisecond})
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if !approxEq(p.Mass(0), 0.75) || !approxEq(p.Mass(1), 0.25) {
		t.Fatalf("masses = %v,%v want 0.75,0.25", p.Mass(0), p.Mass(1))
	}
}

func TestPMFCDFSteps(t *testing.T) {
	p := FromSamples([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond})
	tests := []struct {
		x    time.Duration
		want float64
	}{
		{5 * time.Millisecond, 0},
		{10 * time.Millisecond, 0.25},
		{15 * time.Millisecond, 0.25},
		{25 * time.Millisecond, 0.5},
		{40 * time.Millisecond, 1},
		{time.Hour, 1},
	}
	for _, tt := range tests {
		if got := p.CDF(tt.x); !approxEq(got, tt.want) {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestPointPMF(t *testing.T) {
	p := Point(7 * time.Millisecond)
	if p.Len() != 1 || p.CDF(6*time.Millisecond) != 0 || p.CDF(7*time.Millisecond) != 1 {
		t.Fatal("point PMF CDF wrong")
	}
	if p.Mean() != 7*time.Millisecond {
		t.Fatalf("Mean = %v, want 7ms", p.Mean())
	}
}

func TestConvolveKnownCase(t *testing.T) {
	// Two fair coins over {0, 10ms}: sum is {0:1/4, 10:1/2, 20:1/4}.
	coin := FromSamples([]time.Duration{0, 10 * time.Millisecond})
	sum := coin.Convolve(coin)
	if sum.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sum.Len())
	}
	wantMass := []float64{0.25, 0.5, 0.25}
	for i, w := range wantMass {
		if !approxEq(sum.Mass(i), w) {
			t.Fatalf("mass[%d] = %v, want %v", i, sum.Mass(i), w)
		}
	}
}

func TestConvolveWithZeroPMFIsIdentity(t *testing.T) {
	p := FromSamples([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	if got := p.Convolve(PMF{}); got.Len() != p.Len() || !approxEq(got.TotalMass(), 1) {
		t.Fatal("convolving with zero PMF changed the distribution")
	}
	if got := (PMF{}).Convolve(p); got.Len() != p.Len() {
		t.Fatal("zero.Convolve(p) should return p")
	}
}

func TestShift(t *testing.T) {
	p := FromSamples([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	q := p.Shift(5 * time.Millisecond)
	if q.CDF(5*time.Millisecond) != 0 {
		t.Fatal("shift did not move mass")
	}
	if !approxEq(q.CDF(6*time.Millisecond), 0.5) || !approxEq(q.CDF(7*time.Millisecond), 1) {
		t.Fatal("shifted CDF wrong")
	}
	// Original must be untouched.
	if !approxEq(p.CDF(2*time.Millisecond), 1) {
		t.Fatal("Shift mutated receiver")
	}
}

func TestBinMergesAndPreservesMass(t *testing.T) {
	p := FromSamples([]time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		9 * time.Millisecond, 11 * time.Millisecond,
	})
	b := p.Bin(10 * time.Millisecond)
	if b.Len() >= p.Len() {
		t.Fatalf("binning did not coarsen: %d -> %d", p.Len(), b.Len())
	}
	if !approxEq(b.TotalMass(), 1) {
		t.Fatalf("mass after bin = %v, want 1", b.TotalMass())
	}
	// Values 1,2,3 round to 0; 9,11 round to 10.
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if !approxEq(b.Mass(0), 0.6) || !approxEq(b.Mass(1), 0.4) {
		t.Fatalf("bin masses = %v,%v", b.Mass(0), b.Mass(1))
	}
}

func TestBinZeroWidthNoop(t *testing.T) {
	p := FromSamples([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if got := p.Bin(0); got.Len() != 2 {
		t.Fatal("Bin(0) must be a no-op")
	}
}

func TestMeanAndQuantile(t *testing.T) {
	p := FromSamples([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond})
	if m := p.Mean(); m != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", m)
	}
	if q := p.Quantile(0.5); q != 20*time.Millisecond {
		t.Fatalf("median = %v, want 20ms", q)
	}
	if q := p.Quantile(1.0); q != 30*time.Millisecond {
		t.Fatalf("q100 = %v, want 30ms", q)
	}
	if q := p.Quantile(0.01); q != 10*time.Millisecond {
		t.Fatalf("q1 = %v, want 10ms", q)
	}
}

// samplesFromRaw maps arbitrary quick-generated uint16s to durations.
func samplesFromRaw(raw []uint16) []time.Duration {
	out := make([]time.Duration, len(raw))
	for i, v := range raw {
		out[i] = time.Duration(v) * time.Microsecond
	}
	return out
}

// Property: any empirical PMF has total mass 1 and a monotone CDF reaching 1
// at its maximum support value.
func TestPMFMassAndMonotoneCDFProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := FromSamples(samplesFromRaw(raw))
		if !approxEq(p.TotalMass(), 1) {
			return false
		}
		sup := p.Support()
		prev := -1.0
		for _, v := range sup {
			c := p.CDF(v)
			if c < prev-eps {
				return false
			}
			prev = c
		}
		return approxEq(p.CDF(sup[len(sup)-1]), 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution is commutative and preserves total mass, and the
// mean of the sum is the sum of the means (linearity of expectation).
func TestConvolutionProperty(t *testing.T) {
	prop := func(rawA, rawB []uint16) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		if len(rawA) > 12 {
			rawA = rawA[:12]
		}
		if len(rawB) > 12 {
			rawB = rawB[:12]
		}
		a := FromSamples(samplesFromRaw(rawA))
		b := FromSamples(samplesFromRaw(rawB))
		ab := a.Convolve(b)
		ba := b.Convolve(a)
		if !approxEq(ab.TotalMass(), 1) {
			return false
		}
		if ab.Len() != ba.Len() {
			return false
		}
		for i := 0; i < ab.Len(); i++ {
			if !approxEq(ab.Mass(i), ba.Mass(i)) {
				return false
			}
		}
		wantMean := a.Mean() + b.Mean()
		diff := ab.Mean() - wantMean
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond // rounding slack
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: binning preserves total mass and never increases support size.
func TestBinProperty(t *testing.T) {
	prop := func(raw []uint16, widthUS uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := FromSamples(samplesFromRaw(raw))
		b := p.Bin(time.Duration(widthUS) * time.Microsecond)
		return approxEq(b.TotalMass(), 1) && b.Len() <= p.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConvolveChainAllocBudget guards the convolution cold path's
// allocation fix: with the destination arrays pre-sized to the output
// bound, a full convolve→bin→convolve chain (the per-replica distribution
// pipeline of Section 5.2, cold — no Into-style reuse) costs at most three
// right-sized slice allocations per produced PMF, not an append-doubling
// ladder per array. Budget 12 = 3 stages x 3 arrays + slack for an
// occasional pool refill.
func TestConvolveChainAllocBudget(t *testing.T) {
	mk := func(seed int64, n int) PMF {
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration((seed+int64(i)*7919)%200) * time.Millisecond
		}
		return FromSamples(samples)
	}
	s, w := mk(1, 20), mk(2, 20)
	g := Point(2 * time.Millisecond)
	allocs := testing.AllocsPerRun(100, func() {
		p := s.Convolve(w).Bin(2 * time.Millisecond).Convolve(g)
		if p.CDF(140*time.Millisecond) < 0 {
			t.Fatal("impossible CDF")
		}
	})
	if allocs > 12 {
		t.Fatalf("convolve chain cost %.0f allocs/op, budget 12", allocs)
	}
}
