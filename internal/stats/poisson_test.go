package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonCDFEdgeCases(t *testing.T) {
	if got := PoissonCDF(1.5, -1); got != 0 {
		t.Fatalf("CDF(k=-1) = %v, want 0", got)
	}
	if got := PoissonCDF(0, 0); got != 1 {
		t.Fatalf("CDF(lambda=0,k=0) = %v, want 1", got)
	}
	if got := PoissonCDF(-3, 5); got != 1 {
		t.Fatalf("CDF(lambda<0) = %v, want 1", got)
	}
}

func TestPoissonCDFKnownValues(t *testing.T) {
	// Reference values from the standard Poisson distribution.
	tests := []struct {
		lambda float64
		k      int
		want   float64
	}{
		{1, 0, math.Exp(-1)},      // 0.367879
		{1, 1, 2 * math.Exp(-1)},  // 0.735759
		{2, 2, 5 * math.Exp(-2)},  // 0.676676
		{4, 2, 13 * math.Exp(-4)}, // 0.238103
		{0.5, 3, 0.998248},        // near 1
		{10, 20, 0.998412},        // upper tail
	}
	for _, tt := range tests {
		got := PoissonCDF(tt.lambda, tt.k)
		if math.Abs(got-tt.want) > 1e-5 {
			t.Errorf("PoissonCDF(%v,%d) = %v, want %v", tt.lambda, tt.k, got, tt.want)
		}
	}
}

func TestPoissonCDFLargeLambdaApproximation(t *testing.T) {
	// Around the mean of a large-lambda Poisson, the CDF is near 0.5.
	got := PoissonCDF(1000, 1000)
	if got < 0.45 || got > 0.56 {
		t.Fatalf("CDF(1000,1000) = %v, want about 0.5", got)
	}
	if got := PoissonCDF(1000, 0); got > 1e-6 {
		t.Fatalf("CDF(1000,0) = %v, want ~0", got)
	}
	if got := PoissonCDF(1000, 100000); got < 1-1e-6 {
		t.Fatalf("CDF(1000,100000) = %v, want ~1", got)
	}
}

// Property: the Poisson CDF is within [0,1] and nondecreasing in k,
// nonincreasing in lambda.
func TestPoissonCDFMonotoneProperty(t *testing.T) {
	prop := func(lambdaRaw uint16, k uint8) bool {
		lambda := float64(lambdaRaw) / 100.0 // up to ~655
		c1 := PoissonCDF(lambda, int(k))
		c2 := PoissonCDF(lambda, int(k)+1)
		c3 := PoissonCDF(lambda+0.5, int(k))
		if c1 < 0 || c1 > 1 {
			return false
		}
		return c2 >= c1-1e-9 && c3 <= c1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
