package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stddev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.9, 5}, {1, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.q); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.99, 0},
		{"empty zero q", []float64{}, 0, 0},
		{"single low q", []float64{7}, 0, 7},
		{"single mid q", []float64{7}, 0.5, 7},
		{"single high q", []float64{7}, 1, 7},
		{"single NaN q", []float64{7}, math.NaN(), 7},
		{"NaN q clamps low", []float64{1, 2, 3}, math.NaN(), 1},
		{"negative q", []float64{1, 2, 3}, -0.5, 1},
		{"q above one", []float64{1, 2, 3}, 1.5, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Percentile(tt.xs, tt.q); got != tt.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tt.xs, tt.q, got, tt.want)
			}
		})
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{9, 3, 1, 7, 5, 2, 8, 4, 6}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	got := Percentiles(xs, qs...)
	if len(got) != len(qs) {
		t.Fatalf("got %d results for %d quantiles", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Percentile(xs, q); got[i] != want {
			t.Errorf("Percentiles[%v] = %v, want %v", q, got[i], want)
		}
	}
	if out := Percentiles(nil, 0.5, 0.99); out[0] != 0 || out[1] != 0 {
		t.Errorf("empty sample = %v, want zeros", out)
	}
	if out := Percentiles(xs); len(out) != 0 {
		t.Errorf("no quantiles = %v, want empty", out)
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{1, 2, 5, 10}
	tests := []struct {
		name   string
		counts []uint64
		q      float64
		want   float64
	}{
		{"empty histogram", []uint64{0, 0, 0, 0, 0}, 0.5, 0},
		{"all first bucket q1", []uint64{10, 0, 0, 0, 0}, 1, 1},
		{"all first bucket median", []uint64{10, 0, 0, 0, 0}, 0.5, 0.5},
		{"uniform median at second bound", []uint64{5, 5, 0, 0, 0}, 1, 2},
		{"interpolates in bucket", []uint64{0, 10, 0, 0, 0}, 0.5, 1.5},
		{"overflow clamps to top bound", []uint64{0, 0, 0, 0, 10}, 0.99, 10},
		{"single sample any q", []uint64{0, 0, 1, 0, 0}, 0.25, 5},
		{"NaN q clamps low", []uint64{4, 0, 0, 0, 0}, math.NaN(), 0.25},
		{"q above one", []uint64{0, 0, 0, 4, 0}, 2, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BucketQuantile(bounds, tt.counts, tt.q); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("BucketQuantile(%v, %v) = %v, want %v", tt.counts, tt.q, got, tt.want)
			}
		})
	}
	if got := BucketQuantile(nil, []uint64{3}, 0.5); got != 0 {
		t.Fatalf("no bounds = %v, want 0", got)
	}
}

func TestBucketQuantileMonotone(t *testing.T) {
	bounds := []float64{0.5, 1, 2, 4, 8, 16}
	counts := []uint64{3, 9, 40, 20, 5, 2, 1}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := BucketQuantile(bounds, counts, q)
		if got < prev {
			t.Fatalf("quantile not monotone: q=%v got %v after %v", q, got, prev)
		}
		prev = got
	}
}

func TestTruncNormalDuration(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		d := TruncNormalDuration(r, 100*time.Millisecond, 50*time.Millisecond, 0)
		if d < 0 {
			t.Fatal("truncated sample below floor")
		}
		sum += d
	}
	mean := sum / n
	// Truncation at 0 biases the mean slightly above 100ms.
	if mean < 95*time.Millisecond || mean > 115*time.Millisecond {
		t.Fatalf("mean %v out of expected range", mean)
	}
}

func TestTruncNormalDurationFloor(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := TruncNormalDuration(r, 10*time.Millisecond, 100*time.Millisecond, 5*time.Millisecond)
		if d < 5*time.Millisecond {
			t.Fatalf("sample %v below floor", d)
		}
	}
}
