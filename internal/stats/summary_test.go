package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stddev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.9, 5}, {1, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.q); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestTruncNormalDuration(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		d := TruncNormalDuration(r, 100*time.Millisecond, 50*time.Millisecond, 0)
		if d < 0 {
			t.Fatal("truncated sample below floor")
		}
		sum += d
	}
	mean := sum / n
	// Truncation at 0 biases the mean slightly above 100ms.
	if mean < 95*time.Millisecond || mean > 115*time.Millisecond {
		t.Fatalf("mean %v out of expected range", mean)
	}
}

func TestTruncNormalDurationFloor(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := TruncNormalDuration(r, 10*time.Millisecond, 100*time.Millisecond, 5*time.Millisecond)
		if d < 5*time.Millisecond {
			t.Fatalf("sample %v below floor", d)
		}
	}
}
