package stats

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Summary holds descriptive statistics of a sample, used by the experiment
// harness when reporting measured series.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics; the zero Summary is returned
// for an empty sample. Stddev is the sample standard deviation (n−1).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the q-th percentile (q in [0,1]) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty sample; a NaN q
// is treated as 0.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return nearestRank(sorted, q)
}

// Percentiles returns the qs-th percentiles of xs, sorting the sample once
// — the loop-free replacement for repeated Percentile calls when a report
// wants p50/p95/p99 of the same series. The result is parallel to qs; an
// empty sample yields all zeros.
func Percentiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 || len(qs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = nearestRank(sorted, q)
	}
	return out
}

// nearestRank picks the q-th percentile from an already-sorted non-empty
// sample. NaN and out-of-range q clamp to the sample's extremes — a single-
// sample series returns that sample for every q.
func nearestRank(sorted []float64, q float64) float64 {
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BucketQuantile estimates the q-th quantile (q in [0,1]) of a bucketed
// histogram: bounds are ascending bucket upper bounds and counts holds
// len(bounds)+1 entries, the last being the overflow bucket. The estimate
// interpolates linearly within the bucket containing the target rank
// (taking 0 as the first bucket's lower edge); ranks landing in the
// overflow bucket clamp to the highest finite bound, so the estimate never
// invents values beyond what the layout can resolve. An empty histogram or
// empty bounds returns 0.
func BucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 || len(counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*((rank-prev)/float64(c))
	}
	return bounds[len(bounds)-1]
}

// TruncNormalDuration draws from a normal distribution with the given mean
// and standard deviation, truncated below at floor. The paper simulates
// background server load exactly this way ("a delay that was normally
// distributed with a mean of 100 milliseconds"); truncation keeps simulated
// service times physical.
func TruncNormalDuration(r *rand.Rand, mean, stddev, floor time.Duration) time.Duration {
	d := time.Duration(r.NormFloat64()*float64(stddev)) + mean
	if d < floor {
		d = floor
	}
	return d
}
