package stats

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Summary holds descriptive statistics of a sample, used by the experiment
// harness when reporting measured series.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics; the zero Summary is returned
// for an empty sample. Stddev is the sample standard deviation (n−1).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the q-th percentile (q in [0,1]) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty sample.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// TruncNormalDuration draws from a normal distribution with the given mean
// and standard deviation, truncated below at floor. The paper simulates
// background server load exactly this way ("a delay that was normally
// distributed with a mean of 100 milliseconds"); truncation keeps simulated
// service times physical.
func TruncNormalDuration(r *rand.Rand, mean, stddev, floor time.Duration) time.Duration {
	d := time.Duration(r.NormFloat64()*float64(stddev)) + mean
	if d < floor {
		d = floor
	}
	return d
}
