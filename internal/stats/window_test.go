package stats

import (
	"testing"
	"time"
)

func TestWindowPushAndEvict(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Cap() != 3 {
		t.Fatal("fresh window wrong")
	}
	w.Push(1)
	w.Push(2)
	if got := w.Samples(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Samples = %v", got)
	}
	w.Push(3)
	w.Push(4) // evicts 1
	got := w.Samples()
	want := []time.Duration{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Samples = %v, want %v", got, want)
		}
	}
}

func TestWindowLatest(t *testing.T) {
	w := NewWindow(2)
	if _, ok := w.Latest(); ok {
		t.Fatal("Latest on empty window should report !ok")
	}
	w.Push(5)
	w.Push(7)
	w.Push(9)
	if d, ok := w.Latest(); !ok || d != 9 {
		t.Fatalf("Latest = %v,%v want 9,true", d, ok)
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	w.Push(10 * time.Millisecond)
	w.Push(20 * time.Millisecond)
	if m := w.Mean(); m != 15*time.Millisecond {
		t.Fatalf("Mean = %v, want 15ms", m)
	}
}

func TestWindowPMF(t *testing.T) {
	w := NewWindow(10)
	w.Push(time.Millisecond)
	w.Push(time.Millisecond)
	w.Push(2 * time.Millisecond)
	p := w.PMF()
	if p.Len() != 2 || !approxEq(p.CDF(time.Millisecond), 2.0/3.0) {
		t.Fatalf("window PMF wrong: len=%d cdf=%v", p.Len(), p.CDF(time.Millisecond))
	}
}

func TestWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewWindow(0)
}
