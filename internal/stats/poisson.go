package stats

import "math"

// PoissonCDF returns P(N ≤ k) for N ~ Poisson(lambda). This is Equation 4
// of the paper: the staleness factor P(A_s(t) ≤ a) = Σ_{n=0..a} (λu·tl)^n
// e^{-λu·tl} / n!, with lambda = λu·tl and k = a.
//
// The sum is accumulated iteratively (term_{n+1} = term_n · λ/(n+1)) to stay
// stable for the small-to-moderate λ values that arise from LAN update
// rates. Edge cases: lambda ≤ 0 means no updates can have arrived, so the
// probability is 1; k < 0 is an impossible threshold, probability 0.
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	// For large lambda, e^{-lambda} underflows; use a normal approximation
	// with continuity correction, which is accurate for lambda this large.
	if lambda > 500 {
		z := (float64(k) + 0.5 - lambda) / math.Sqrt(lambda)
		return normalCDF(z)
	}
	term := math.Exp(-lambda)
	sum := term
	for n := 1; n <= k; n++ {
		term *= lambda / float64(n)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// normalCDF is the standard normal CDF Φ(z).
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
