package stats

// This file keeps the pre-optimization map+sort PMF kernels as a slow
// reference implementation. The rewritten merge-based kernels must stay
// BIT-FOR-BIT identical to them: every mass is the same sequence of
// floating-point additions, only the data structures changed. The
// properties below therefore compare with ==, not an epsilon.

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func slowFromMap(acc map[time.Duration]float64) PMF {
	vals := make([]time.Duration, 0, len(acc))
	for v := range acc {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	probs := make([]float64, len(vals))
	for i, v := range vals {
		probs[i] = acc[v]
	}
	p := PMF{vals: vals, probs: probs}
	p.finalize()
	return p
}

func slowFromSamples(samples []time.Duration) PMF {
	if len(samples) == 0 {
		return PMF{}
	}
	acc := make(map[time.Duration]float64, len(samples))
	w := 1.0 / float64(len(samples))
	for _, s := range samples {
		acc[s] += w
	}
	return slowFromMap(acc)
}

func slowConvolve(p, q PMF) PMF {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	acc := make(map[time.Duration]float64, len(p.vals)*len(q.vals))
	for i, pv := range p.vals {
		pm := p.probs[i]
		for j, qv := range q.vals {
			acc[pv+qv] += pm * q.probs[j]
		}
	}
	return slowFromMap(acc)
}

func slowBin(p PMF, width time.Duration) PMF {
	if p.IsZero() || width <= 0 {
		return p
	}
	acc := make(map[time.Duration]float64, len(p.vals))
	for i, v := range p.vals {
		b := (v + width/2) / width * width
		acc[b] += p.probs[i]
	}
	return slowFromMap(acc)
}

func slowCDF(p PMF, x time.Duration) float64 {
	i := sort.Search(len(p.vals), func(i int) bool { return p.vals[i] > x })
	var c float64
	for j := 0; j < i; j++ {
		c += p.probs[j]
	}
	if c > 1 {
		c = 1
	}
	return c
}

// identicalPMF demands bitwise equality of support and masses.
func identicalPMF(a, b PMF) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.vals[i] != b.vals[i] || a.probs[i] != b.probs[i] {
			return false
		}
	}
	return true
}

// randomSamples converts quick-generated raw values into a duration sample
// set with deliberately many duplicates (small modulus) so merge paths and
// map paths both see collisions.
func randomSamples(raw []uint16) []time.Duration {
	out := make([]time.Duration, len(raw))
	for i, v := range raw {
		out[i] = time.Duration(v%97) * 250 * time.Microsecond
	}
	return out
}

func TestFromSamplesMatchesSlowReference(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := randomSamples(raw)
		return identicalPMF(FromSamples(s), slowFromSamples(s))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveMatchesSlowReference(t *testing.T) {
	prop := func(rawA, rawB []uint16) bool {
		if len(rawA) > 24 {
			rawA = rawA[:24]
		}
		if len(rawB) > 24 {
			rawB = rawB[:24]
		}
		a := FromSamples(randomSamples(rawA))
		b := FromSamples(randomSamples(rawB))
		return identicalPMF(a.Convolve(b), slowConvolve(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinMatchesSlowReference(t *testing.T) {
	prop := func(raw []uint16, widthUS uint16) bool {
		p := FromSamples(randomSamples(raw))
		w := time.Duration(widthUS%5000) * time.Microsecond
		return identicalPMF(p.Bin(w), slowBin(p, w))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMatchesSlowReference(t *testing.T) {
	prop := func(raw []uint16, xsRaw []uint16) bool {
		p := FromSamples(randomSamples(raw))
		for _, xr := range xsRaw {
			x := time.Duration(xr) * 100 * time.Microsecond
			if p.CDF(x) != slowCDF(p, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The full Equation 5/6 pipeline — bin, convolve, bin, shift, CDF at a
// deadline — must match the slow reference bit-for-bit, since selection
// decisions hang off these exact CDF values.
func TestPipelineMatchesSlowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(25)
		mk := func() []time.Duration {
			s := make([]time.Duration, n)
			for i := range s {
				s[i] = time.Duration(rng.Intn(200_000)) * time.Microsecond
			}
			return s
		}
		width := time.Duration(rng.Intn(4)) * time.Millisecond // includes 0
		shift := time.Duration(rng.Intn(5_000)) * time.Microsecond
		deadline := time.Duration(rng.Intn(400)) * time.Millisecond

		sS, wS := mk(), mk()
		fast := FromSamples(sS).Bin(width).Convolve(FromSamples(wS).Bin(width)).Bin(width).Shift(shift)
		slow := slowBin(slowConvolve(slowBin(slowFromSamples(sS), width), slowBin(slowFromSamples(wS), width)), width).Shift(shift)
		if !identicalPMF(fast, slow) {
			t.Fatalf("iter %d: pipeline PMFs diverge", iter)
		}
		if got, want := fast.CDF(deadline), slowCDF(slow, deadline); got != want {
			t.Fatalf("iter %d: CDF(%v) = %v, slow %v", iter, deadline, got, want)
		}
	}
}

// In-place kernels must produce the same results as the value API while
// reusing their destination buffers across calls.
func TestIntoKernelsReuseBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dstA, dstB, conv PMF
	var sc ConvScratch
	samples := make([]time.Duration, 0, 32)
	for iter := 0; iter < 200; iter++ {
		samples = samples[:0]
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			samples = append(samples, time.Duration(rng.Intn(50))*time.Millisecond)
		}
		want := FromSamples(samples)
		FromSamplesInto(&dstA, samples)
		if !identicalPMF(dstA, want) {
			t.Fatalf("iter %d: FromSamplesInto diverged", iter)
		}
		width := time.Duration(rng.Intn(3)) * time.Millisecond
		dstA.BinInto(&dstB, width)
		if !identicalPMF(dstB, want.Bin(width)) {
			t.Fatalf("iter %d: BinInto diverged", iter)
		}
		ConvolveInto(&conv, dstA, dstB, &sc)
		if !identicalPMF(conv, dstA.Convolve(dstB)) {
			t.Fatalf("iter %d: ConvolveInto diverged", iter)
		}
	}
}

func TestConvolveIntoZeroOperands(t *testing.T) {
	p := FromSamples([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	var dst PMF
	var sc ConvScratch
	ConvolveInto(&dst, p, PMF{}, &sc)
	if !identicalPMF(dst, p) {
		t.Fatal("ConvolveInto with zero q must copy p")
	}
	ConvolveInto(&dst, PMF{}, p, &sc)
	if !identicalPMF(dst, p) {
		t.Fatal("ConvolveInto with zero p must copy q")
	}
	ConvolveInto(&dst, PMF{}, PMF{}, &sc)
	if !dst.IsZero() {
		t.Fatal("ConvolveInto of two zero PMFs must reset dst")
	}
}

func TestPointInto(t *testing.T) {
	var dst PMF
	PointInto(&dst, 7*time.Millisecond)
	if !identicalPMF(dst, Point(7*time.Millisecond)) {
		t.Fatal("PointInto diverged from Point")
	}
	PointInto(&dst, 0)
	if dst.Len() != 1 || dst.CDF(0) != 1 {
		t.Fatal("PointInto(0) wrong")
	}
}

func TestCDFBatchMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(30)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Intn(100)) * time.Millisecond
		}
		p := FromSamples(samples)
		xs := make([]time.Duration, 1+rng.Intn(20))
		for i := range xs {
			xs[i] = time.Duration(rng.Intn(120)) * time.Millisecond
		}
		if iter%2 == 0 {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		}
		got := p.CDFBatch(xs, nil)
		for i, x := range xs {
			if got[i] != p.CDF(x) {
				t.Fatalf("iter %d: CDFBatch[%d] = %v, CDF(%v) = %v", iter, i, got[i], x, p.CDF(x))
			}
		}
		// Zero PMF answers 0 everywhere.
		if z := (PMF{}).CDFBatch(xs, nil); len(z) != len(xs) {
			t.Fatal("zero PMF batch length")
		}
	}
}

func TestConvolveCDFMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		mk := func() PMF {
			n := 1 + rng.Intn(20)
			s := make([]time.Duration, n)
			for i := range s {
				s[i] = time.Duration(rng.Intn(80)) * time.Millisecond
			}
			return FromSamples(s)
		}
		p, q := mk(), mk()
		x := time.Duration(rng.Intn(250)) * time.Millisecond
		got := p.ConvolveCDF(q, x)
		want := p.Convolve(q).CDF(x)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// Accumulation order differs from the materialized path, so allow
		// float tolerance here (this API is exact-convolution, not part of
		// the bit-for-bit selection pipeline).
		if diff > 1e-12 {
			t.Fatalf("iter %d: ConvolveCDF = %v, materialized = %v", iter, got, want)
		}
	}
	// Zero-operand degradation.
	p := FromSamples([]time.Duration{time.Millisecond})
	if got := p.ConvolveCDF(PMF{}, time.Millisecond); got != 1 {
		t.Fatalf("ConvolveCDF with zero q = %v", got)
	}
	if got := (PMF{}).ConvolveCDF(p, time.Millisecond); got != 1 {
		t.Fatalf("ConvolveCDF with zero p = %v", got)
	}
}
