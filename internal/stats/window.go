package stats

import "time"

// Window is a fixed-capacity sliding window of duration measurements, the
// structure the paper's information repository uses to record "the most
// recent l measurements" of each performance parameter (Section 5.2). The
// zero value is unusable; construct with NewWindow.
type Window struct {
	buf   []time.Duration
	next  int
	count int
}

// NewWindow returns a window holding at most size samples. It panics if
// size is not positive, which is always a configuration bug.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic("stats: window size must be positive")
	}
	return &Window{buf: make([]time.Duration, size)}
}

// Push records a sample, evicting the oldest once the window is full.
func (w *Window) Push(d time.Duration) {
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.count }

// Cap returns the window capacity l.
func (w *Window) Cap() int { return len(w.buf) }

// Samples returns the held samples, oldest first.
func (w *Window) Samples() []time.Duration {
	return w.AppendSamples(make([]time.Duration, 0, w.count))
}

// AppendSamples appends the held samples, oldest first, to dst and returns
// it — the allocation-free form of Samples for callers holding a scratch
// buffer.
func (w *Window) AppendSamples(dst []time.Duration) []time.Duration {
	if w.count < len(w.buf) {
		return append(dst, w.buf[:w.count]...)
	}
	dst = append(dst, w.buf[w.next:]...)
	return append(dst, w.buf[:w.next]...)
}

// PMF builds the empirical PMF of the window's contents.
func (w *Window) PMF() PMF { return FromSamples(w.Samples()) }

// Latest returns the most recently pushed sample, or ok=false if empty.
func (w *Window) Latest() (d time.Duration, ok bool) {
	if w.count == 0 {
		return 0, false
	}
	i := w.next - 1
	if i < 0 {
		i = len(w.buf) - 1
	}
	return w.buf[i], true
}

// Mean returns the mean of the held samples, or 0 if empty.
func (w *Window) Mean() time.Duration {
	if w.count == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range w.Samples() {
		sum += s
	}
	return sum / time.Duration(w.count)
}
