// Package stats implements the numeric machinery of the paper's
// probabilistic selection model: sliding windows of performance
// measurements, discrete probability mass functions with convolution
// (Section 5.2), the Poisson staleness factor (Equation 4), and the binomial
// confidence intervals used when reporting timing-failure probabilities
// (Section 6).
package stats

import (
	"sort"
	"time"
)

// PMF is a discrete probability mass function over durations. The zero
// value is an empty PMF, which represents "no information" and reports a
// CDF of 0 everywhere. A non-empty PMF keeps its support sorted ascending
// and its masses summing to 1 (up to floating-point error).
type PMF struct {
	vals  []time.Duration
	probs []float64
}

// FromSamples builds an empirical PMF assigning equal mass to every sample,
// exactly as the paper derives pmfs "based on the relative frequency of
// their values recorded in the sliding window". Duplicate samples merge.
func FromSamples(samples []time.Duration) PMF {
	if len(samples) == 0 {
		return PMF{}
	}
	acc := make(map[time.Duration]float64, len(samples))
	w := 1.0 / float64(len(samples))
	for _, s := range samples {
		acc[s] += w
	}
	return fromMap(acc)
}

// Point is the degenerate PMF with all mass at v. It models the paper's use
// of "the most recently recorded value" of the gateway delay as a constant.
func Point(v time.Duration) PMF {
	return PMF{vals: []time.Duration{v}, probs: []float64{1}}
}

func fromMap(acc map[time.Duration]float64) PMF {
	vals := make([]time.Duration, 0, len(acc))
	for v := range acc {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	probs := make([]float64, len(vals))
	for i, v := range vals {
		probs[i] = acc[v]
	}
	return PMF{vals: vals, probs: probs}
}

// Len returns the number of support points.
func (p PMF) Len() int { return len(p.vals) }

// IsZero reports whether the PMF carries no information.
func (p PMF) IsZero() bool { return len(p.vals) == 0 }

// Support returns a copy of the support values, ascending.
func (p PMF) Support() []time.Duration {
	out := make([]time.Duration, len(p.vals))
	copy(out, p.vals)
	return out
}

// Mass returns the probability mass at the i-th support point.
func (p PMF) Mass(i int) float64 { return p.probs[i] }

// TotalMass returns the sum of all masses (≈1 for any non-empty PMF).
func (p PMF) TotalMass() float64 {
	var t float64
	for _, q := range p.probs {
		t += q
	}
	return t
}

// Convolve returns the distribution of X+Y for independent X~p, Y~q. The
// result is the discrete convolution the paper uses to combine the service
// time, queueing delay, gateway delay, and (for deferred reads) lazy-update
// wait. Convolving with the zero PMF yields the other operand unchanged, so
// missing-history cases degrade gracefully.
func (p PMF) Convolve(q PMF) PMF {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	acc := make(map[time.Duration]float64, len(p.vals)*len(q.vals))
	for i, pv := range p.vals {
		pm := p.probs[i]
		for j, qv := range q.vals {
			acc[pv+qv] += pm * q.probs[j]
		}
	}
	return fromMap(acc)
}

// Shift returns the distribution of X+d.
func (p PMF) Shift(d time.Duration) PMF {
	if p.IsZero() || d == 0 {
		return p
	}
	vals := make([]time.Duration, len(p.vals))
	for i, v := range p.vals {
		vals[i] = v + d
	}
	probs := make([]float64, len(p.probs))
	copy(probs, p.probs)
	return PMF{vals: vals, probs: probs}
}

// Bin coarsens the support by rounding every value to the nearest multiple
// of width, merging masses. Binning bounds the support growth of repeated
// convolutions; width 0 returns the PMF unchanged.
func (p PMF) Bin(width time.Duration) PMF {
	if p.IsZero() || width <= 0 {
		return p
	}
	acc := make(map[time.Duration]float64, len(p.vals))
	for i, v := range p.vals {
		b := (v + width/2) / width * width
		acc[b] += p.probs[i]
	}
	return fromMap(acc)
}

// CDF returns P(X ≤ x). For the empty PMF it returns 0, the conservative
// choice for a replica with no recorded history: the model then predicts it
// cannot help meet the deadline, and the selection algorithm must probe it
// (its high elapsed response time puts it early in the sort order) before
// relying on it.
func (p PMF) CDF(x time.Duration) float64 {
	// Support is sorted: binary search for the first value > x.
	i := sort.Search(len(p.vals), func(i int) bool { return p.vals[i] > x })
	var c float64
	for j := 0; j < i; j++ {
		c += p.probs[j]
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Mean returns E[X], or 0 for the empty PMF.
func (p PMF) Mean() time.Duration {
	var m float64
	for i, v := range p.vals {
		m += float64(v) * p.probs[i]
	}
	return time.Duration(m)
}

// Quantile returns the smallest x in the support with CDF(x) ≥ q. For the
// empty PMF it returns 0.
func (p PMF) Quantile(q float64) time.Duration {
	if p.IsZero() {
		return 0
	}
	var c float64
	for i, v := range p.vals {
		c += p.probs[i]
		if c >= q {
			return v
		}
	}
	return p.vals[len(p.vals)-1]
}
