// Package stats implements the numeric machinery of the paper's
// probabilistic selection model: sliding windows of performance
// measurements, discrete probability mass functions with convolution
// (Section 5.2), the Poisson staleness factor (Equation 4), and the binomial
// confidence intervals used when reporting timing-failure probabilities
// (Section 6).
package stats

import (
	"sort"
	"sync"
	"time"
)

// PMF is a discrete probability mass function over durations. The zero
// value is an empty PMF, which represents "no information" and reports a
// CDF of 0 everywhere. A non-empty PMF keeps its support sorted ascending,
// its masses summing to 1 (up to floating-point error), and a prefix-sum
// table so CDF queries are a binary search plus one lookup.
type PMF struct {
	vals  []time.Duration
	probs []float64
	// cum[i] is the raw (unclamped) prefix sum probs[0]+…+probs[i],
	// accumulated left to right; CDF reads clamp it to 1 in one place.
	cum []float64
}

// FromSamples builds an empirical PMF assigning equal mass to every sample,
// exactly as the paper derives pmfs "based on the relative frequency of
// their values recorded in the sliding window". Duplicate samples merge.
func FromSamples(samples []time.Duration) PMF {
	if len(samples) == 0 {
		return PMF{}
	}
	scratch := make([]time.Duration, len(samples))
	copy(scratch, samples)
	var p PMF
	FromSamplesInto(&p, scratch)
	return p
}

// FromSamplesInto builds the empirical PMF of samples into dst, reusing
// dst's backing arrays. samples is sorted in place; pass a scratch copy if
// the original order matters. An empty samples slice resets dst to the zero
// PMF.
func FromSamplesInto(dst *PMF, samples []time.Duration) {
	dst.reset()
	if len(samples) == 0 {
		return
	}
	dst.growFor(len(samples))
	sortDurations(samples)
	w := 1.0 / float64(len(samples))
	for _, s := range samples {
		dst.accumulate(s, w)
	}
	dst.finalize()
}

// Point is the degenerate PMF with all mass at v. It models the paper's use
// of "the most recently recorded value" of the gateway delay as a constant.
func Point(v time.Duration) PMF {
	var p PMF
	PointInto(&p, v)
	return p
}

// PointInto writes the degenerate all-mass-at-v PMF into dst, reusing its
// backing arrays.
func PointInto(dst *PMF, v time.Duration) {
	dst.reset()
	dst.vals = append(dst.vals, v)
	dst.probs = append(dst.probs, 1)
	dst.cum = append(dst.cum, 1)
}

// reset empties p while keeping its backing arrays for reuse.
func (p *PMF) reset() {
	p.vals = p.vals[:0]
	p.probs = p.probs[:0]
	p.cum = p.cum[:0]
}

// growFor ensures the (empty) backing arrays can hold n support points, so
// the accumulate/finalize passes that follow never re-grow them. A kernel
// that knows its output bound pays at most three right-sized allocations
// instead of O(log n) append doublings per array — the difference between
// ~80 and ~9 allocs for a convolve→bin→convolve chain on a cold PMF.
func (p *PMF) growFor(n int) {
	if cap(p.vals) < n {
		p.vals = make([]time.Duration, 0, n)
		p.probs = make([]float64, 0, n)
		p.cum = make([]float64, 0, n)
	}
}

// accumulate merges mass at v into the PMF under construction. Calls must
// arrive with non-decreasing v so the support stays sorted.
func (p *PMF) accumulate(v time.Duration, mass float64) {
	if n := len(p.vals); n > 0 && p.vals[n-1] == v {
		p.probs[n-1] += mass
		return
	}
	p.vals = append(p.vals, v)
	p.probs = append(p.probs, mass)
}

// finalize recomputes the prefix-sum table after the support and masses are
// in place. Accumulation is left to right over the sorted support — the
// same order the pre-prefix-sum CDF scan used — so lookups are bit-for-bit
// identical to the old linear scan.
func (p *PMF) finalize() {
	p.cum = p.cum[:0]
	var c float64
	for _, q := range p.probs {
		c += q
		p.cum = append(p.cum, c)
	}
}

// copyFrom makes dst an independent copy of src, reusing dst's arrays.
func (p *PMF) copyFrom(src PMF) {
	p.vals = append(p.vals[:0], src.vals...)
	p.probs = append(p.probs[:0], src.probs...)
	p.cum = append(p.cum[:0], src.cum...)
}

// Len returns the number of support points.
func (p PMF) Len() int { return len(p.vals) }

// IsZero reports whether the PMF carries no information.
func (p PMF) IsZero() bool { return len(p.vals) == 0 }

// Support returns a copy of the support values, ascending.
func (p PMF) Support() []time.Duration {
	out := make([]time.Duration, len(p.vals))
	copy(out, p.vals)
	return out
}

// Mass returns the probability mass at the i-th support point.
func (p PMF) Mass(i int) float64 { return p.probs[i] }

// TotalMass returns the sum of all masses (≈1 for any non-empty PMF).
func (p PMF) TotalMass() float64 {
	if len(p.cum) == 0 {
		return 0
	}
	return p.cum[len(p.cum)-1]
}

// ConvScratch holds the reusable buffers of the merge-based convolution
// kernel: two (value, mass) pair arrays that ping-pong during the bottom-up
// run merge. The zero value is ready to use; one scratch may be reused
// across any number of ConvolveInto calls but not concurrently.
type ConvScratch struct {
	vals, vals2   []time.Duration
	probs, probs2 []float64
}

func (sc *ConvScratch) grow(n int) {
	if cap(sc.vals) < n {
		sc.vals = make([]time.Duration, n)
		sc.probs = make([]float64, n)
		sc.vals2 = make([]time.Duration, n)
		sc.probs2 = make([]float64, n)
	}
	sc.vals = sc.vals[:n]
	sc.probs = sc.probs[:n]
	sc.vals2 = sc.vals2[:n]
	sc.probs2 = sc.probs2[:n]
}

var convPool = sync.Pool{New: func() any { return new(ConvScratch) }}

// Convolve returns the distribution of X+Y for independent X~p, Y~q. The
// result is the discrete convolution the paper uses to combine the service
// time, queueing delay, gateway delay, and (for deferred reads) lazy-update
// wait. Convolving with the zero PMF yields the other operand unchanged, so
// missing-history cases degrade gracefully.
func (p PMF) Convolve(q PMF) PMF {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	sc := convPool.Get().(*ConvScratch)
	var out PMF
	ConvolveInto(&out, p, q, sc)
	convPool.Put(sc)
	return out
}

// ConvolveInto computes the convolution of p and q into dst, reusing dst's
// backing arrays and sc's pair buffers. dst must not alias p or q. It is
// the allocation-free form of Convolve: the outer product is materialized
// in scan order — row i holds p[i]+q[j] for ascending j, so each row is
// already sorted — then the n sorted rows are combined by a bottom-up
// stable merge that takes from the left run on ties. Left runs hold lower
// scan positions, so equal sums end up ordered by scan position and the
// final run-length pass accumulates masses in the exact order the old
// map-based kernel added them — keeping results bit-for-bit identical.
func ConvolveInto(dst *PMF, p, q PMF, sc *ConvScratch) {
	if p.IsZero() {
		dst.copyFrom(q)
		return
	}
	if q.IsZero() {
		dst.copyFrom(p)
		return
	}
	n, m := len(p.vals), len(q.vals)
	total := n * m
	sc.grow(total)
	k := 0
	for i := 0; i < n; i++ {
		pv, pm := p.vals[i], p.probs[i]
		for j := 0; j < m; j++ {
			sc.vals[k] = pv + q.vals[j]
			sc.probs[k] = pm * q.probs[j]
			k++
		}
	}
	dst.reset()
	dst.growFor(total)
	srcV, srcP := sc.vals, sc.probs
	dstV, dstP := sc.vals2, sc.probs2
	for run := m; run < total; run *= 2 {
		for start := 0; start < total; start += 2 * run {
			mid, end := start+run, start+2*run
			if mid >= total {
				// Lone tail run: already sorted, carry it over.
				copy(dstV[start:], srcV[start:])
				copy(dstP[start:], srcP[start:])
				continue
			}
			if end > total {
				end = total
			}
			i, j, o := start, mid, start
			for i < mid && j < end {
				if srcV[j] < srcV[i] {
					dstV[o], dstP[o] = srcV[j], srcP[j]
					j++
				} else {
					dstV[o], dstP[o] = srcV[i], srcP[i]
					i++
				}
				o++
			}
			copy(dstV[o:end], srcV[i:mid])
			copy(dstP[o:end], srcP[i:mid])
			if i < mid {
				o += mid - i
			}
			copy(dstV[o:end], srcV[j:end])
			copy(dstP[o:end], srcP[j:end])
		}
		srcV, dstV = dstV, srcV
		srcP, dstP = dstP, srcP
	}
	for k := 0; k < total; k++ {
		dst.accumulate(srcV[k], srcP[k])
	}
	dst.finalize()
}

// ConvolveCDF returns P(X+Y ≤ x) for independent X~p, Y~q without
// materializing the convolved support: a single backward merge over the two
// sorted supports using q's prefix sums, O(len(p)+len(q)). Note it computes
// the exact (unbinned) convolution's CDF, so when a pipeline bins the
// convolved PMF before evaluating it, the results legitimately differ by
// the binning's rounding.
func (p PMF) ConvolveCDF(q PMF, x time.Duration) float64 {
	if p.IsZero() {
		return q.CDF(x)
	}
	if q.IsZero() {
		return p.CDF(x)
	}
	var c float64
	j := len(q.vals)
	for i := 0; i < len(p.vals); i++ {
		t := x - p.vals[i]
		for j > 0 && q.vals[j-1] > t {
			j--
		}
		if j == 0 {
			break // thresholds only shrink from here; no further mass ≤ x
		}
		c += p.probs[i] * q.cum[j-1]
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Shift returns the distribution of X+d.
func (p PMF) Shift(d time.Duration) PMF {
	if p.IsZero() || d == 0 {
		return p
	}
	var out PMF
	out.copyFrom(p)
	out.ShiftInPlace(d)
	return out
}

// ShiftInPlace adds d to every support point, leaving masses (and the
// prefix sums) untouched.
func (p *PMF) ShiftInPlace(d time.Duration) {
	if d == 0 {
		return
	}
	for i := range p.vals {
		p.vals[i] += d
	}
}

// Bin coarsens the support by rounding every value to the nearest multiple
// of width, merging masses. Binning bounds the support growth of repeated
// convolutions; width 0 returns the PMF unchanged.
func (p PMF) Bin(width time.Duration) PMF {
	if p.IsZero() || width <= 0 {
		return p
	}
	var out PMF
	p.BinInto(&out, width)
	return out
}

// BinInto writes p coarsened to width into dst, reusing dst's backing
// arrays. dst must not alias p. A non-positive width copies p unchanged.
// Rounding is monotone over the sorted support, so the merge is a single
// run-length pass — no map, no re-sort.
func (p PMF) BinInto(dst *PMF, width time.Duration) {
	if width <= 0 {
		dst.copyFrom(p)
		return
	}
	dst.reset()
	dst.growFor(len(p.vals))
	for i, v := range p.vals {
		b := (v + width/2) / width * width
		dst.accumulate(b, p.probs[i])
	}
	dst.finalize()
}

// CDF returns P(X ≤ x). For the empty PMF it returns 0, the conservative
// choice for a replica with no recorded history: the model then predicts it
// cannot help meet the deadline, and the selection algorithm must probe it
// (its high elapsed response time puts it early in the sort order) before
// relying on it.
func (p PMF) CDF(x time.Duration) float64 {
	// Support is sorted: binary search for the first value > x, then read
	// the prefix sum. The search is hand-rolled so the hot path allocates
	// nothing (sort.Search would box a closure).
	lo, hi := 0, len(p.vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.vals[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	c := p.cum[lo-1]
	if c > 1 {
		c = 1
	}
	return c
}

// CDFBatch evaluates the CDF at every x in xs, appending the results to out
// and returning it. Ascending xs are answered with one merged forward walk
// over the support (O(len(xs)+len(p))); unsorted inputs fall back to a
// binary search per point.
func (p PMF) CDFBatch(xs []time.Duration, out []float64) []float64 {
	ascending := true
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			ascending = false
			break
		}
	}
	if !ascending {
		for _, x := range xs {
			out = append(out, p.CDF(x))
		}
		return out
	}
	i := 0 // first support index with vals[i] > current x
	for _, x := range xs {
		for i < len(p.vals) && p.vals[i] <= x {
			i++
		}
		if i == 0 {
			out = append(out, 0)
			continue
		}
		c := p.cum[i-1]
		if c > 1 {
			c = 1
		}
		out = append(out, c)
	}
	return out
}

// Mean returns E[X], or 0 for the empty PMF.
func (p PMF) Mean() time.Duration {
	var m float64
	for i, v := range p.vals {
		m += float64(v) * p.probs[i]
	}
	return time.Duration(m)
}

// Quantile returns the smallest x in the support with CDF(x) ≥ q. For the
// empty PMF it returns 0.
func (p PMF) Quantile(q float64) time.Duration {
	if p.IsZero() {
		return 0
	}
	// cum is non-decreasing: binary search for the first prefix sum ≥ q.
	lo, hi := 0, len(p.cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.cum[mid] >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(p.vals) {
		return p.vals[len(p.vals)-1]
	}
	return p.vals[lo]
}

// sortDurations sorts ds ascending. Small slices — every sliding window in
// the system — take an insertion sort to keep the hot path allocation-free;
// sort.Slice would heap-allocate its closure.
func sortDurations(ds []time.Duration) {
	if len(ds) > 64 {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return
	}
	for i := 1; i < len(ds); i++ {
		v := ds[i]
		j := i - 1
		for j >= 0 && ds[j] > v {
			ds[j+1] = ds[j]
			j--
		}
		ds[j+1] = v
	}
}
