package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialConfidenceBasics(t *testing.T) {
	ci := BinomialConfidence(50, 100, 0.95)
	if !approxEq(ci.Point, 0.5) {
		t.Fatalf("point = %v, want 0.5", ci.Point)
	}
	// Wilson 95% for 50/100 is roughly [0.404, 0.596].
	if ci.Lo < 0.39 || ci.Lo > 0.42 || ci.Hi < 0.58 || ci.Hi > 0.61 {
		t.Fatalf("CI = [%v,%v], want about [0.404,0.596]", ci.Lo, ci.Hi)
	}
}

func TestBinomialConfidenceZeroSuccesses(t *testing.T) {
	ci := BinomialConfidence(0, 1000, 0.95)
	if ci.Point != 0 || ci.Lo != 0 {
		t.Fatalf("CI = %+v, want Point=Lo=0", ci)
	}
	if ci.Hi <= 0 || ci.Hi > 0.01 {
		t.Fatalf("Hi = %v, want small positive (Wilson does not collapse)", ci.Hi)
	}
}

func TestBinomialConfidenceAllSuccesses(t *testing.T) {
	ci := BinomialConfidence(100, 100, 0.95)
	if ci.Point != 1 || ci.Hi != 1 {
		t.Fatalf("CI = %+v, want Point=Hi=1", ci)
	}
	if ci.Lo >= 1 || ci.Lo < 0.9 {
		t.Fatalf("Lo = %v, want just under 1", ci.Lo)
	}
}

func TestBinomialConfidenceInvalidN(t *testing.T) {
	if ci := BinomialConfidence(1, 0, 0.95); ci != (BinomialCI{}) {
		t.Fatalf("n=0 should return zero CI, got %+v", ci)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // approx Φ(1)
	}
	for _, tt := range tests {
		got := normalQuantile(tt.p)
		if math.Abs(got-tt.want) > 1e-3 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ±Inf")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		z := normalQuantile(p)
		if back := normalCDF(z); math.Abs(back-p) > 1e-6 {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, back)
		}
	}
}

// Property: the CI always contains the point estimate and lies within [0,1],
// and more trials never widen the interval (for a fixed proportion).
func TestBinomialConfidenceProperty(t *testing.T) {
	prop := func(succRaw, extraRaw uint8) bool {
		n := int(succRaw) + int(extraRaw) + 1
		s := int(succRaw)
		ci := BinomialConfidence(s, n, 0.95)
		if ci.Lo < 0 || ci.Hi > 1 || ci.Lo > ci.Hi {
			return false
		}
		if ci.Point < ci.Lo-1e-9 || ci.Point > ci.Hi+1e-9 {
			return false
		}
		// Scaling up 4x shrinks the CI width.
		ci4 := BinomialConfidence(4*s, 4*n, 0.95)
		return (ci4.Hi - ci4.Lo) <= (ci.Hi-ci.Lo)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
