#!/usr/bin/env sh
# Runs the selection hot-path benchmarks (Figure 3 overhead, PMF
# convolution kernels, Algorithm 1, and the steady-state evaluate loop) and
# writes the results as JSON to BENCH_selection.json at the repo root.
#
# Usage: scripts/bench.sh [count]
#   count: -count value passed to go test (default 5)
set -eu

cd "$(dirname "$0")/.."
count="${1:-5}"
out="BENCH_selection.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Fig3|PMFConvolve|Selection|EvaluateSteadyState' \
	-benchmem -count "$count" . | tee "$raw"

# Convert `go test -bench` lines into a JSON array. A benchmark line looks
# like:
#   BenchmarkFoo/k=v-8   1000  1234 ns/op  56 B/op  7 allocs/op
awk -v count="$count" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"bench_regexp\": \"Fig3|PMFConvolve|Selection|EvaluateSteadyState\",\n"
	printf "  \"count\": %s,\n", count
	# Pre-optimization numbers (map-based PMF kernels, no caching), taken on
	# the same machine before the hot-path rewrite, kept for comparison.
	printf "  \"baseline_pre_optimization\": [\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=4/window=10\", \"ns_per_op\": 314463},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=10/window=10\", \"ns_per_op\": 764746},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=16/window=10\", \"ns_per_op\": 1155494},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=4/window=20\", \"ns_per_op\": 825767},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=10/window=20\", \"ns_per_op\": 2005523},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=16/window=20\", \"ns_per_op\": 3117736, \"bytes_per_op\": 1350984, \"allocs_per_op\": 1386},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=10\", \"ns_per_op\": 23482},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=20\", \"ns_per_op\": 59023},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=40\", \"ns_per_op\": 105379},\n"
	printf "    {\"name\": \"BenchmarkSelectionAlgorithm1\", \"ns_per_op\": 1085}\n"
	printf "  ],\n"
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out"
