#!/usr/bin/env sh
# Runs the selection hot-path benchmarks (Figure 3 overhead, PMF
# convolution kernels, Algorithm 1, and the steady-state evaluate loop) and
# writes the results as JSON to BENCH_selection.json at the repo root, then
# runs the simulator/sweep benchmarks (full Fig4 points, scheduler event
# throughput, parallel sweep wall clock) and writes BENCH_sweep.json.
#
# Usage: scripts/bench.sh [count]
#   count: -count value passed to go test (default 5)
set -eu

cd "$(dirname "$0")/.."
count="${1:-5}"
out="BENCH_selection.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Fig3|PMFConvolve|Selection|EvaluateSteadyState' \
	-benchmem -count "$count" . | tee "$raw"

# Convert `go test -bench` lines into a JSON array. A benchmark line looks
# like:
#   BenchmarkFoo/k=v-8   1000  1234 ns/op  56 B/op  7 allocs/op
awk -v count="$count" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"bench_regexp\": \"Fig3|PMFConvolve|Selection|EvaluateSteadyState\",\n"
	printf "  \"count\": %s,\n", count
	# Pre-optimization numbers (map-based PMF kernels, no caching), taken on
	# the same machine before the hot-path rewrite, kept for comparison.
	printf "  \"baseline_pre_optimization\": [\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=4/window=10\", \"ns_per_op\": 314463},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=10/window=10\", \"ns_per_op\": 764746},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=16/window=10\", \"ns_per_op\": 1155494},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=4/window=20\", \"ns_per_op\": 825767},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=10/window=20\", \"ns_per_op\": 2005523},\n"
	printf "    {\"name\": \"BenchmarkFig3SelectionOverhead/replicas=16/window=20\", \"ns_per_op\": 3117736, \"bytes_per_op\": 1350984, \"allocs_per_op\": 1386},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=10\", \"ns_per_op\": 23482},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=20\", \"ns_per_op\": 59023},\n"
	printf "    {\"name\": \"BenchmarkPMFConvolve/window=40\", \"ns_per_op\": 105379},\n"
	printf "    {\"name\": \"BenchmarkSelectionAlgorithm1\", \"ns_per_op\": 1085}\n"
	printf "  ],\n"
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out"

# ---- Simulator core + parallel sweep engine ----
# BenchmarkFig4Point is the per-point cost of a full 200-request experiment
# (ns_per_op = ns/point); BenchmarkSimulator is raw scheduler throughput
# (events_per_sec derived from ns/op); BenchmarkSweepWallClock compares a
# 16-point sweep run sequentially and at GOMAXPROCS.
sweep_out="BENCH_sweep.json"
sweep_raw="$(mktemp)"
trap 'rm -f "$raw" "$sweep_raw"' EXIT

go test -run '^$' -bench 'BenchmarkFig4Point$|BenchmarkSimulator$|BenchmarkSweepWallClock' \
	-benchmem -count 3 . | tee "$sweep_raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (name ~ /BenchmarkSimulator/)
		line = line sprintf(", \"events_per_sec\": %d", 1e9 / ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"bench_regexp\": \"BenchmarkFig4Point$|BenchmarkSimulator$|BenchmarkSweepWallClock\",\n"
	# Pre-PR numbers (per-event/per-message allocation, sequential sweeps
	# only), taken on the same machine before the free-list/pooling rewrite.
	printf "  \"baseline_pre_optimization\": [\n"
	printf "    {\"name\": \"BenchmarkFig4Point\", \"ns_per_op\": 89005114, \"bytes_per_op\": 26899997, \"allocs_per_op\": 497656},\n"
	printf "    {\"name\": \"BenchmarkSimulator\", \"ns_per_op\": 115.2, \"events_per_sec\": 8680555, \"bytes_per_op\": 79, \"allocs_per_op\": 1}\n"
	printf "  ],\n"
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$sweep_raw" > "$sweep_out"

echo "wrote $sweep_out"

# ---- Observability overhead ----
# BenchmarkFig4PointObs re-runs the full-experiment benchmark with a metrics
# registry attached everywhere; the overhead_percent summary compares its
# mean ns/op against the plain run above. The contract is <= 5% overhead with
# metrics enabled and zero allocs on the disabled steady-state path
# (BenchmarkEvaluateSteadyState's allocs/op column, enforced by
# TestEvaluateSteadyStateZeroAlloc in CI).
obs_out="BENCH_obs.json"
obs_raw="$(mktemp)"
trap 'rm -f "$raw" "$sweep_raw" "$obs_raw"' EXIT

go test -run '^$' -bench 'BenchmarkFig4Point$|BenchmarkFig4PointObs$|BenchmarkEvaluateSteadyState' \
	-benchmem -count 3 . | tee "$obs_raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (name ~ /^BenchmarkFig4PointObs/) { obsSum += ns; obsN++ }
	else if (name ~ /^BenchmarkFig4Point/) { plainSum += ns; plainN++ }
	if (name ~ /^BenchmarkEvaluateSteadyState/ && allocs != "" && allocs + 0 > ssAllocs)
		ssAllocs = allocs + 0
	line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"bench_regexp\": \"BenchmarkFig4Point$|BenchmarkFig4PointObs$|BenchmarkEvaluateSteadyState\",\n"
	if (plainN > 0 && obsN > 0) {
		overhead = (obsSum / obsN) / (plainSum / plainN) * 100 - 100
		printf "  \"metrics_enabled_overhead_percent\": %.2f,\n", overhead
		printf "  \"overhead_target_percent\": 5,\n"
	}
	printf "  \"disabled_steady_state_allocs_per_op\": %d,\n", ssAllocs
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$obs_raw" > "$obs_out"

echo "wrote $obs_out"

# ---- Live transport wire codec ----
# BenchmarkWireCodec compares the binary frame codec against the gob stream
# it replaced on the transport's hot frame; BenchmarkTCPThroughput runs both
# designs over real loopback TCP in the same process (frames_per_sec derived
# from ns per delivered frame). The wire_vs_gob summary holds the acceptance
# ratios: throughput >= 3x frames/sec and >= 5x fewer allocs/op than the gob
# baseline recorded in the same run; encode path 0 allocs/frame. On the
# single-core benchmark container treat ns/op as indicative; the ratios come
# from the same run so they stay comparable.
wire_out="BENCH_wire.json"
wire_raw="$(mktemp)"
trap 'rm -f "$raw" "$sweep_raw" "$obs_raw" "$wire_raw"' EXIT

go test -run '^$' -bench 'BenchmarkWireCodec|BenchmarkTCPThroughput' \
	-benchmem -benchtime 2s -count 3 . | tee "$wire_raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (name ~ /^BenchmarkTCPThroughput\/wire/) { wNs += ns; wAl += allocs; wN++ }
	if (name ~ /^BenchmarkTCPThroughput\/gob/)  { gNs += ns; gAl += allocs; gN++ }
	line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (name ~ /^BenchmarkTCPThroughput/)
		line = line sprintf(", \"frames_per_sec\": %d", 1e9 / ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"bench_regexp\": \"BenchmarkWireCodec|BenchmarkTCPThroughput\",\n"
	if (wN > 0 && gN > 0) {
		printf "  \"wire_vs_gob\": {\n"
		printf "    \"throughput_ratio\": %.2f,\n", (gNs / gN) / (wNs / wN)
		printf "    \"throughput_target\": 3,\n"
		printf "    \"allocs_ratio\": %.2f,\n", (gAl / gN) / (wAl / wN)
		printf "    \"allocs_target\": 5\n"
		printf "  },\n"
	}
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$wire_raw" > "$wire_out"

echo "wrote $wire_out"

# ---- Heavy-traffic loadmax ----
# Ramps an open-loop arrival process (internal/workload) against a 3+1
# primary ring until the read p99 / failure-rate bound breaks, once with the
# legacy per-request sequencer path and once with batched GSN assignment +
# the group-commit fast path, in the same run. aquabench writes the peak
# sustained updates/sec + reads/sec for both modes and the speedup ratio
# directly as JSON; TestBenchLoadmaxJSONWellFormed enforces the >= 3x
# acceptance floor on speedup_updates in CI.
go run ./cmd/aquabench -experiment loadmax -progress=false \
	-loadmax-json BENCH_loadmax.json

echo "wrote BENCH_loadmax.json"

# ---- Sharded scale-out shardmax ----
# Repeats the open-loop ramp against 1, 2, and 4 independent shard
# deployments (internal/shard keyspace partitioning, one sequencer and lazy
# publisher per shard) on one simulated runtime, batching always on. Each
# point is a share-nothing run at its own derived seed; the report records
# per-shard completion counts and the peak sustained updates/sec per shard
# count plus the speedup over the 1-shard ramp. TestBenchShardmaxJSONWellFormed
# enforces the >= 2.5x acceptance floor on speedup_updates at 4 shards in CI.
go run ./cmd/aquabench -experiment shardmax -progress=false \
	-shards 1,2,4 -shardmax-json BENCH_shardmax.json

echo "wrote BENCH_shardmax.json"

# ---- Live-cluster livemax ----
# The only wall-clock benchmark in this file: the open-loop engine drives a
# real deployment (parallel node runtime, TCP loopback sockets) through an
# offered-load ramp, once on the pre-optimization hot path (per-message
# mailbox wakeups + per-frame inbound allocation) and once on the optimized
# one, in the same run; a closed-loop hot-path pump then isolates the
# runtime/transport layers from protocol CPU. The report records the host's
# GOMAXPROCS — the speedup floor enforced by TestBenchLivemaxJSONWellFormed
# depends on it, because the optimized paths win on contention that a
# single-core host cannot express (see EXPERIMENTS.md).
go run ./cmd/aquabench -experiment livemax -progress=false \
	-livemax-json BENCH_livemax.json

echo "wrote BENCH_livemax.json"
