// Ordering demonstrates the framework's tunable ordering guarantees — the
// two-dimensional consistency attribute of Section 2 ("<ordering guarantee,
// staleness threshold>") and the per-service handlers of Figure 2. The same
// two-writer workload runs under all three handlers this repository
// implements:
//
//   - sequential (the paper's focus): every replica applies every update in
//     one global order fixed by the sequencer;
//   - causal: replicas agree on the order of causally related updates but
//     may interleave concurrent ones differently;
//   - FIFO ("service B"): only each writer's own order is preserved.
//
// The run prints, per handler, whether replicas converged to identical
// state and which guarantee was exercised.
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/causal"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/fifo"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
)

const (
	writes  = 40 // per writer, all to the same contended key
	jitter  = 15 * time.Millisecond
	replCnt = 3
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ordering:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("two writers race %d updates each onto one key, network jitter up to %v\n\n", writes, jitter)
	if err := runSequential(); err != nil {
		return err
	}
	if err := runCausal(); err != nil {
		return err
	}
	return runFIFO()
}

func report(handler string, finals map[node.ID]string, note string) {
	identical := true
	var ref string
	first := true
	for _, v := range finals {
		if first {
			ref, first = v, false
			continue
		}
		if v != ref {
			identical = false
		}
	}
	fmt.Printf("%-12s replicas converged identically: %-5v  final values: %v\n", handler, identical, finals)
	fmt.Printf("%12s %s\n\n", "", note)
}

func runSequential() error {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: jitter}))
	done := 0
	mkWriter := func(name string) core.ClientConfig {
		return core.ClientConfig{
			ID:      node.ID(name),
			Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.5},
			Methods: qos.NewMethods("Get"),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var issue func(i int)
				issue = func(i int) {
					if i >= writes {
						done++
						return
					}
					gw.Invoke("Set", []byte(fmt.Sprintf("x=%s%d", name, i)), func(client.Result) {
						issue(i + 1)
					})
				}
				ctx.SetTimer(0, func() { issue(0) })
			},
		}
	}
	d, err := core.Deploy(rt, core.ServiceConfig{
		Primaries:    replCnt + 1,
		Secondaries:  0,
		LazyInterval: time.Second,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}, []core.ClientConfig{mkWriter("alice"), mkWriter("bob")})
	if err != nil {
		return err
	}
	rt.Start()
	for i := 0; i < 120 && done < 2; i++ {
		s.RunFor(time.Second)
	}
	finals := make(map[node.ID]string)
	for _, id := range d.ServingPrimaries {
		v, _ := d.Replicas[id].App().Read("Get", []byte("x"))
		finals[id] = string(v)
	}
	report("sequential", finals,
		"the sequencer's total order makes every replica end on the same value")
	return nil
}

func runCausal() error {
	s := sim.NewScheduler(2)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: jitter}))
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	rids := []node.ID{"r0", "r1", "r2"}
	replicas := make(map[node.ID]*causal.Replica, len(rids))
	for _, id := range rids {
		r := causal.NewReplica(causal.ReplicaConfig{Replicas: rids, Group: gcfg, App: apps.NewKVStore()})
		replicas[id] = r
		rt.Register(id, r)
	}
	for _, name := range []string{"alice", "bob"} {
		name := name
		c := causal.NewClient(causal.ClientConfig{Replicas: rids, Group: gcfg})
		rt.Register(node.ID(name), &causalDriver{c: c, name: name})
	}
	rt.Start()
	s.RunFor(60 * time.Second)

	finals := make(map[node.ID]string)
	for id, r := range replicas {
		v, _ := r.App().Read("Get", []byte("x"))
		finals[id] = string(v)
	}
	report("causal", finals,
		"alice and bob never read each other, so their writes are concurrent:")
	fmt.Printf("%12s replicas may interleave them differently (same-writer order still holds)\n\n", "")
	return nil
}

// causalDriver issues this writer's stream in its own order.
type causalDriver struct {
	c    *causal.Client
	name string
}

func (d *causalDriver) Init(ctx node.Context) {
	d.c.Init(ctx)
	// Open loop: fire the whole stream at once so the two writers' updates
	// interleave heavily in flight.
	ctx.SetTimer(0, func() {
		for i := 0; i < writes; i++ {
			d.c.Write("Set", []byte(fmt.Sprintf("x=%s%d", d.name, i)), nil)
		}
	})
}

func (d *causalDriver) Recv(from node.ID, m node.Message) { d.c.Recv(from, m) }

func runFIFO() error {
	s := sim.NewScheduler(3)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: jitter}))
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	rids := []node.ID{"r0", "r1", "r2"}
	replicas := make(map[node.ID]*fifo.Replica, len(rids))
	for _, id := range rids {
		r := fifo.NewReplica(fifo.ReplicaConfig{Replicas: rids, Group: gcfg, App: apps.NewKVStore()})
		replicas[id] = r
		rt.Register(id, r)
	}
	for _, name := range []string{"alice", "bob"} {
		c := fifo.NewClient(fifo.ClientConfig{Replicas: rids, Group: gcfg})
		rt.Register(node.ID(name), &fifoDriver{c: c, name: name})
	}
	rt.Start()
	s.RunFor(60 * time.Second)

	finals := make(map[node.ID]string)
	for id, r := range replicas {
		v, _ := r.App().Read("Get", []byte("x"))
		finals[id] = string(v)
	}
	report("fifo", finals,
		"only per-writer order is guaranteed; cross-writer interleavings diverge freely")
	return nil
}

type fifoDriver struct {
	c    *fifo.Client
	name string
}

func (d *fifoDriver) Init(ctx node.Context) {
	d.c.Init(ctx)
	ctx.SetTimer(0, func() {
		for i := 0; i < writes; i++ {
			d.c.Update("Set", []byte(fmt.Sprintf("x=%s%d", d.name, i)), nil)
		}
	})
}

func (d *fifoDriver) Recv(from node.ID, m node.Message) { d.c.Recv(from, m) }
