// Failover demonstrates the dependability mechanics the paper relies on:
// mid-run we crash, in order, a serving primary, the lazy publisher, and
// finally the sequencer itself. The client's closed-loop workload keeps
// running throughout; the run prints each fault, the resulting role
// changes, and the client's end-to-end QoS accounting.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	s := sim.NewScheduler(13)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: time.Millisecond, Max: 3 * time.Millisecond}))

	svc := core.ServiceConfig{
		Primaries:    4, // p00 sequencer + p01 p02 p03
		Secondaries:  3,
		LazyInterval: time.Second,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, 30*time.Millisecond, 10*time.Millisecond, 0)
		},
	}

	const requests = 300
	var completed, failures int
	done := false
	clients := []core.ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: 300 * time.Millisecond, MinProb: 0.8},
		Methods: qos.NewMethods("Get", "Version"),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(i int)
			issue = func(i int) {
				if i >= requests {
					done = true
					return
				}
				next := func(r client.Result) {
					completed++
					if r.TimingFailure {
						failures++
					}
					ctx.SetTimer(100*time.Millisecond, func() { issue(i + 1) })
				}
				if i%2 == 0 {
					gw.Invoke("Set", []byte(fmt.Sprintf("k=%d", i)), next)
				} else {
					gw.Invoke("Get", []byte("k"), next)
				}
			}
			ctx.SetTimer(0, func() { issue(0) })
		},
	}}

	d, err := core.Deploy(rt, svc, clients)
	if err != nil {
		return err
	}
	rt.Start()

	report := func(label string) {
		var seq, pub node.ID
		for id, gw := range d.Replicas {
			if rt.Crashed(id) {
				continue
			}
			if gw.IsLeader() {
				seq = id
			}
			if gw.IsPublisher() {
				pub = id
			}
		}
		fmt.Printf("%8v  %-26s sequencer=%-4s publisher=%-4s completed=%3d late=%d\n",
			s.Now().Sub(sim.Epoch).Round(time.Second), label, seq, pub, completed, failures)
	}

	crash := func(id node.ID, label string) {
		rt.Crash(id)
		fmt.Printf("%8v  CRASH %s (%s)\n", s.Now().Sub(sim.Epoch).Round(time.Second), id, label)
	}

	s.RunFor(5 * time.Second)
	report("steady state")

	crash("p02", "serving primary")
	s.RunFor(8 * time.Second)
	report("after primary crash")

	crash("p01", "lazy publisher")
	s.RunFor(8 * time.Second)
	report("after publisher crash")

	crash("p00", "sequencer")
	s.RunFor(8 * time.Second)
	report("after sequencer crash")

	// Act four: p02 comes back from the dead as a fresh process. The
	// recovery protocol (startup SyncRequest + link incarnations) brings it
	// up to date, and — as the lowest live primary ID — it reclaims both
	// the sequencer and publisher roles from p03.
	fresh, err := d.NewReplicaGateway("p02")
	if err != nil {
		return err
	}
	rt.Restart("p02", fresh)
	fmt.Printf("%8v  RESTART p02 (rejoins empty, recovers state)\n", s.Now().Sub(sim.Epoch).Round(time.Second))
	s.RunFor(8 * time.Second)
	report("after p02 rejoins")

	for i := 0; i < 300 && !done; i++ {
		s.RunFor(time.Second)
	}
	report("workload finished")

	rate := float64(failures) / float64(max(completed, 1))
	fmt.Printf("\nfinal: %d/%d requests completed, timing-failure rate %.3f (spec allows %.3f)\n",
		completed, requests, rate, 1-0.8)
	if completed != requests {
		return fmt.Errorf("workload stalled at %d/%d", completed, requests)
	}
	// The restarted p02 (lowest live primary ID) reclaimed the sequencer
	// role from p03 and converged with it.
	if !fresh.IsLeader() {
		return fmt.Errorf("restarted p02 did not reclaim sequencing")
	}
	if fresh.Applied() != d.Replicas["p03"].Applied() {
		return fmt.Errorf("restarted p02 at %d, p03 at %d: states diverged",
			fresh.Applied(), d.Replicas["p03"].Applied())
	}
	fmt.Println("three crashes and a rejoin later: QoS held, the restarted replica")
	fmt.Println("recovered full state, reclaimed sequencing, and the service never stopped.")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
