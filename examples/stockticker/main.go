// Stockticker reproduces the paper's Section 1 example of a real-time
// database application: online stock trading. A market feed streams price
// updates; two consumer profiles read the board:
//
//   - a dashboard that tolerates stale quotes (staleness 20) in exchange
//     for a tight deadline, and
//   - a trader that insists on nearly-fresh prices (staleness 1) and
//     therefore accepts more timing risk.
//
// The run demonstrates the consistency/timeliness trade-off the QoS model
// exposes: same service, different <staleness, deadline, probability>
// specifications, different observed behaviour.
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stockticker:", err)
		os.Exit(1)
	}
}

type consumer struct {
	name     string
	spec     qos.Spec
	reads    int
	failures int
	selected int
	respSum  time.Duration
	done     bool
}

func run() error {
	s := sim.NewScheduler(42)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: time.Millisecond, Max: 3 * time.Millisecond}))

	const (
		feedUpdates   = 400
		consumerReads = 250
	)

	svc := core.ServiceConfig{
		Primaries:    4,
		Secondaries:  6,
		LazyInterval: 2 * time.Second,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewTicker() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, 60*time.Millisecond, 25*time.Millisecond, 0)
		},
	}

	consumers := []*consumer{
		{name: "dashboard", spec: qos.Spec{Staleness: 20, Deadline: 120 * time.Millisecond, MinProb: 0.9}},
		{name: "trader", spec: qos.Spec{Staleness: 1, Deadline: 120 * time.Millisecond, MinProb: 0.9}},
	}

	feedDone := false
	clients := []core.ClientConfig{{
		ID:      "feed",
		Spec:    qos.Spec{Staleness: 0, Deadline: 5 * time.Second, MinProb: 0.1},
		Methods: qos.NewMethods("Price", "Board", "Version"),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			symbols := []string{"ACME", "GLOBEX", "INITECH", "HOOLI"}
			var tick func(i int)
			tick = func(i int) {
				if i >= feedUpdates {
					feedDone = true
					return
				}
				sym := symbols[i%len(symbols)]
				delta := ctx.Rand().Int63n(200) - 100
				gw.Invoke("Trade", []byte(fmt.Sprintf("%s:%+d", sym, delta)), func(client.Result) {
					ctx.SetTimer(150*time.Millisecond, func() { tick(i + 1) })
				})
			}
			ctx.SetTimer(0, func() {
				// Seed the board first.
				var seed func(j int)
				seed = func(j int) {
					if j >= len(symbols) {
						tick(0)
						return
					}
					gw.Invoke("Quote", []byte(fmt.Sprintf("%s=%d", symbols[j], 10000+j)), func(client.Result) {
						seed(j + 1)
					})
				}
				seed(0)
			})
		},
	}}

	for _, c := range consumers {
		c := c
		clients = append(clients, core.ClientConfig{
			ID:      node.ID(c.name),
			Spec:    c.spec,
			Methods: qos.NewMethods("Price", "Board", "Version"),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var look func(i int)
				look = func(i int) {
					if i >= consumerReads {
						c.done = true
						return
					}
					gw.Invoke("Price", []byte("ACME"), func(r client.Result) {
						c.reads++
						c.respSum += r.ResponseTime
						c.selected += r.Selected
						if r.TimingFailure {
							c.failures++
						}
						ctx.SetTimer(200*time.Millisecond, func() { look(i + 1) })
					})
				}
				ctx.SetTimer(500*time.Millisecond, func() { look(0) })
			},
		})
	}

	if _, err := core.Deploy(rt, svc, clients); err != nil {
		return err
	}
	rt.Start()
	allDone := func() bool {
		if !feedDone {
			return false
		}
		for _, c := range consumers {
			if !c.done {
				return false
			}
		}
		return true
	}
	for i := 0; i < 600 && !allDone(); i++ {
		s.RunFor(time.Second)
	}

	fmt.Printf("market feed: %d trades streamed; consumers: %d price reads each\n\n", feedUpdates, consumerReads)
	fmt.Printf("%-10s %-42s %8s %8s %12s %12s\n", "consumer", "QoS", "late", "rate", "avg resp", "avg #repl")
	for _, c := range consumers {
		mean := time.Duration(0)
		if c.reads > 0 {
			mean = c.respSum / time.Duration(c.reads)
		}
		rate := float64(c.failures) / float64(c.reads)
		fmt.Printf("%-10s %-42s %8d %8.3f %12v %12.2f\n",
			c.name, c.spec, c.failures, rate, mean.Round(time.Millisecond),
			float64(c.selected)/float64(c.reads))
	}
	fmt.Println("\nThe dashboard's relaxed staleness lets the whole secondary group serve")
	fmt.Println("it; the trader's staleness 1 leans on the primaries and deferred reads,")
	fmt.Println("so it selects more replicas to hold the same deadline probability.")
	return nil
}
