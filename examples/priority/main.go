// Priority demonstrates the paper's Section 7 extensions: clients specify
// a *priority* instead of a raw probability (the middleware maps it through
// a PriorityMap), and an admission controller evaluates — against observed
// replica performance — whether a prospective client's QoS is currently
// satisfiable before it is admitted.
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/selection"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "priority:", err)
		os.Exit(1)
	}
}

func run() error {
	s := sim.NewScheduler(77)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: time.Millisecond, Max: 3 * time.Millisecond}))

	const lazy = 2 * time.Second
	svc := core.ServiceConfig{
		Primaries:    4,
		Secondaries:  6,
		LazyInterval: lazy,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, 100*time.Millisecond, 50*time.Millisecond, 0)
		},
	}

	// Priority levels → minimum probability of timely response.
	prio := core.DefaultPriorityMap()
	fmt.Println("priority map: bronze=0.50  silver=0.70  gold=0.90  platinum=0.99")
	fmt.Println()

	// One pilot client warms the repository and runs a gold workload.
	type tally struct {
		reads, failures int
	}
	tallies := map[string]*tally{}
	mkDriver := func(name string, total int) func(node.Context, *client.Gateway) {
		tallies[name] = &tally{}
		return func(ctx node.Context, gw *client.Gateway) {
			var issue func(i int)
			issue = func(i int) {
				if i >= total {
					return
				}
				next := func(r client.Result) {
					ctx.SetTimer(150*time.Millisecond, func() { issue(i + 1) })
				}
				if i%2 == 0 {
					gw.Invoke("Set", []byte(fmt.Sprintf("%s=%d", name, i)), next)
				} else {
					gw.Invoke("Get", []byte(name), func(r client.Result) {
						tallies[name].reads++
						if r.TimingFailure {
							tallies[name].failures++
						}
						next(r)
					})
				}
			}
			ctx.SetTimer(0, func() { issue(0) })
		}
	}

	clients := []core.ClientConfig{
		{
			ID:      "gold-1",
			Spec:    prio.SpecFor(2 /* gold */, 2, 200*time.Millisecond),
			Methods: qos.NewMethods("Get", "Version"),
			Driver:  mkDriver("gold-1", 200),
		},
		{
			ID:      "bronze-1",
			Spec:    prio.SpecFor(0 /* bronze */, 4, 150*time.Millisecond),
			Methods: qos.NewMethods("Get", "Version"),
			Driver:  mkDriver("bronze-1", 200),
		},
	}
	d, err := core.Deploy(rt, svc, clients)
	if err != nil {
		return err
	}
	rt.Start()
	s.RunFor(60 * time.Second) // warm-up + workload

	for _, name := range []string{"gold-1", "bronze-1"} {
		tl := tallies[name]
		spec := clients[0].Spec
		if name == "bronze-1" {
			spec = clients[1].Spec
		}
		rate := 0.0
		if tl.reads > 0 {
			rate = float64(tl.failures) / float64(tl.reads)
		}
		fmt.Printf("%-9s %-44s reads=%3d late=%2d rate=%.3f\n", name, spec, tl.reads, tl.failures, rate)
	}

	// Admission control: evaluate prospective clients against the warmed
	// repository of gold-1 (a monitoring probe in a real deployment).
	fmt.Println("\nadmission control against observed performance:")
	ac := core.AdmissionController{Model: selection.Model{
		BinWidth:     2 * time.Millisecond,
		LazyInterval: lazy,
	}}
	repo := d.Clients["gold-1"].Repository()
	now := s.Now()
	candidates := []struct {
		label string
		spec  qos.Spec
	}{
		{"platinum, 300ms", prio.SpecFor(3, 2, 300*time.Millisecond)},
		{"gold, 150ms", prio.SpecFor(2, 2, 150*time.Millisecond)},
		{"platinum, 60ms", prio.SpecFor(3, 2, 60*time.Millisecond)},
		{"platinum, 20ms (hopeless)", prio.SpecFor(3, 2, 20*time.Millisecond)},
	}
	for _, c := range candidates {
		dec := ac.Evaluate(repo, d.Info, c.spec, now)
		verdict := "REJECT"
		if dec.Admit {
			verdict = "admit "
		}
		fmt.Printf("  %-28s -> %s (predicted PK=%.3f with %d replicas)\n",
			c.label, verdict, dec.PredictedPK, dec.ReplicasNeeded)
	}
	return nil
}
