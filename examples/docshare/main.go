// Docshare reproduces the paper's Section 2 motivating scenario: "a
// document-sharing application in which multiple readers and writers
// concurrently access a document that is updated in sequential mode", where
// a reader asks for "a copy of the document that is not more than 5
// versions old within 2.0 seconds with a probability of at least 0.7".
//
// Two writers stream edits while three readers with that QoS fetch the
// document; the run executes on the deterministic simulator, so thousands
// of virtual seconds finish instantly.
//
//	go run ./examples/docshare
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

const (
	writers      = 2
	readers      = 3
	editsEach    = 120
	fetchesEach  = 150
	lazyInterval = 1 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "docshare:", err)
		os.Exit(1)
	}
}

func run() error {
	s := sim.NewScheduler(2002)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: time.Millisecond, Max: 4 * time.Millisecond}))

	svc := core.ServiceConfig{
		Primaries:    4,
		Secondaries:  5,
		LazyInterval: lazyInterval,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewDocument() },
		// Editing servers carry background load: ~40ms per request.
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, 40*time.Millisecond, 15*time.Millisecond, 0)
		},
	}

	// The paper's example QoS, verbatim.
	readerSpec := qos.Spec{Staleness: 5, Deadline: 2 * time.Second, MinProb: 0.7}
	fmt.Printf("reader QoS: %s\n\n", readerSpec)

	var clients []core.ClientConfig
	writersDone := 0
	for w := 0; w < writers; w++ {
		w := w
		clients = append(clients, core.ClientConfig{
			ID:      node.ID(fmt.Sprintf("writer-%d", w)),
			Spec:    qos.Spec{Staleness: 0, Deadline: 5 * time.Second, MinProb: 0.1},
			Methods: qos.NewMethods("Fetch", "Line", "Version"),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var edit func(i int)
				edit = func(i int) {
					if i >= editsEach {
						writersDone++
						return
					}
					line := fmt.Sprintf("writer %d, edit %d", w, i)
					gw.Invoke("Append", []byte(line), func(client.Result) {
						ctx.SetTimer(400*time.Millisecond, func() { edit(i + 1) })
					})
				}
				ctx.SetTimer(time.Duration(w)*50*time.Millisecond, func() { edit(0) })
			},
		})
	}

	type readerStats struct {
		fetches  int
		failures int
		respSum  time.Duration
	}
	rstats := make([]*readerStats, readers)
	readersDone := 0
	for r := 0; r < readers; r++ {
		r := r
		rstats[r] = &readerStats{}
		clients = append(clients, core.ClientConfig{
			ID:      node.ID(fmt.Sprintf("reader-%d", r)),
			Spec:    readerSpec,
			Methods: qos.NewMethods("Fetch", "Line", "Version"),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var fetch func(i int)
				fetch = func(i int) {
					if i >= fetchesEach {
						readersDone++
						return
					}
					gw.Invoke("Version", nil, func(res client.Result) {
						rstats[r].fetches++
						rstats[r].respSum += res.ResponseTime
						if res.TimingFailure {
							rstats[r].failures++
						}
						ctx.SetTimer(300*time.Millisecond, func() { fetch(i + 1) })
					})
				}
				ctx.SetTimer(time.Duration(r)*70*time.Millisecond, func() { fetch(0) })
			},
		})
	}

	d, err := core.Deploy(rt, svc, clients)
	if err != nil {
		return err
	}
	rt.Start()
	for i := 0; i < 600 && (writersDone < writers || readersDone < readers); i++ {
		s.RunFor(time.Second)
	}

	virtual := s.Now().Sub(sim.Epoch)
	fmt.Printf("simulated %v of document sharing (%d edits, %d fetches per reader)\n\n",
		virtual.Round(time.Second), writers*editsEach, fetchesEach)

	for r := 0; r < readers; r++ {
		st := rstats[r]
		mean := time.Duration(0)
		if st.fetches > 0 {
			mean = st.respSum / time.Duration(st.fetches)
		}
		rate := float64(st.failures) / float64(max(st.fetches, 1))
		verdict := "met"
		if rate > 1-readerSpec.MinProb {
			verdict = "VIOLATED"
		}
		fmt.Printf("reader-%d: %3d fetches, %2d late (%.3f), mean response %8v  -> QoS %s\n",
			r, st.fetches, st.failures, rate, mean.Round(time.Millisecond), verdict)
	}

	// Show the final document version converging across the groups.
	fmt.Println()
	for _, id := range []node.ID{"p01", "s00"} {
		v, err := d.Replicas[id].App().Read("Version", nil)
		if err != nil {
			return err
		}
		fmt.Printf("replica %s final document version: %s (applied %d updates)\n",
			id, v, d.Replicas[id].Applied())
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
