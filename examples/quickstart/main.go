// Quickstart: deploy a replicated key-value service on the live runtime
// (real goroutines, real timers), attach a client with a QoS specification,
// and issue a handful of writes and reads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/qos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rt := live.NewRuntime(live.WithSeed(7))
	done := make(chan struct{})

	// The service: a sequencer + 2 serving primaries + 2 secondaries, with
	// lazy updates every 500ms.
	svc := core.ServiceConfig{
		Primaries:    3,
		Secondaries:  2,
		LazyInterval: 500 * time.Millisecond,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}

	// The client wants responses at most 1 version stale, within 250ms,
	// with probability at least 0.8.
	spec := qos.Spec{Staleness: 1, Deadline: 250 * time.Millisecond, MinProb: 0.8}
	fmt.Printf("client QoS: %s\n\n", spec)

	clientCfg := core.ClientConfig{
		ID:      "alice",
		Spec:    spec,
		Methods: qos.NewMethods("Get", "Version"),
		OnBreach: func(rate float64) {
			fmt.Printf("!! QoS breach callback: observed failure rate %.2f\n", rate)
		},
		Driver: func(ctx node.Context, gw *client.Gateway) {
			keys := []string{"lang=go", "paper=DSN2002", "middleware=aqua"}
			var step func(i int)
			step = func(i int) {
				if i >= len(keys) {
					gw.Invoke("Get", []byte("middleware"), func(r client.Result) {
						fmt.Printf("read  middleware -> %q from %s in %v (timing failure: %v, %d replicas selected)\n",
							r.Payload, r.Replica, r.ResponseTime.Round(time.Microsecond), r.TimingFailure, r.Selected)
						m := gw.Metrics()
						fmt.Printf("\nmetrics: %d updates, %d reads, %d timing failures\n",
							m.Updates, m.Reads, m.TimingFailures)
						close(done)
					})
					return
				}
				gw.Invoke("Set", []byte(keys[i]), func(r client.Result) {
					fmt.Printf("write %-16s -> %s from %s in %v\n",
						keys[i], r.Payload, r.Replica, r.ResponseTime.Round(time.Microsecond))
					step(i + 1)
				})
			}
			ctx.SetTimer(50*time.Millisecond, func() { step(0) })
		},
	}

	d, err := core.Deploy(rt, svc, []core.ClientConfig{clientCfg})
	if err != nil {
		return err
	}
	fmt.Printf("deployed: sequencer=%s serving=%v secondaries=%v\n\n",
		d.Sequencer, d.ServingPrimaries, d.Secondaries)

	rt.Start()
	defer rt.Stop()

	select {
	case <-done:
		return nil
	case <-time.After(10 * time.Second):
		return fmt.Errorf("timed out waiting for the workload")
	}
}
