// Package aqua's root benchmarks regenerate the paper's evaluation, one
// bench per table/figure (see EXPERIMENTS.md for the mapping):
//
//	BenchmarkFig3SelectionOverhead  — Figure 3 (selection overhead, µs)
//	BenchmarkFig4aReplicasSelected  — Figure 4a (avg replicas selected)
//	BenchmarkFig4bTimingFailures    — Figure 4b (timing-failure probability)
//	BenchmarkAblationSelectors      — selector-baseline ablation
//	BenchmarkAblationFailover       — crash-injection ablation
//
// Figure 4 benches run a full virtual-time experiment per iteration and
// report the measured series via b.ReportMetric; absolute numbers are
// machine-independent because the runs use the simulator's virtual clock.
//
//	go test -bench=. -benchmem
package aqua_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/experiment"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/sim"
	"aqua/internal/stats"
	"aqua/internal/tcpnet"
)

func seededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// benchRequests keeps full-scale runs affordable inside testing.B; the
// aquabench CLI runs the paper's full 1000-request experiments.
const benchRequests = 200

// BenchmarkFig3SelectionOverhead measures the probabilistic selection
// algorithm exactly as Figure 3 does: distribution computation plus
// Algorithm 1, against a warmed repository, per (replica count, window).
func BenchmarkFig3SelectionOverhead(b *testing.B) {
	// The paper's grid stops at 10 replicas; 16 extends the series to the
	// scale the optimization work is benchmarked against.
	counts := append(experiment.DefaultFig3ReplicaCounts(), 16)
	for _, window := range experiment.DefaultFig3Windows() {
		for _, replicas := range counts {
			name := fmt.Sprintf("replicas=%d/window=%d", replicas, window)
			b.Run(name, func(b *testing.B) {
				rng := seededRand(42)
				now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
				repo := repository.New(window)
				prim, sec := experiment.SeedRepository(repo, replicas, window, rng, now)
				model := selection.Model{BinWidth: 2 * time.Millisecond, LazyInterval: 4 * time.Second}
				spec := qos.Spec{Staleness: 2, Deadline: 150 * time.Millisecond, MinProb: 0.9}
				sel := selection.Algorithm1{}

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					in := model.Evaluate(repo, prim, sec, "seq", spec, now)
					sel.Select(in)
				}
			})
		}
	}
}

// BenchmarkFig4aReplicasSelected regenerates the Figure 4a series; the
// reported custom metric "replicas/read" is the figure's y-axis.
func BenchmarkFig4aReplicasSelected(b *testing.B) {
	benchFig4(b, func(b *testing.B, r experiment.Fig4Result) {
		b.ReportMetric(r.AvgSelected, "replicas/read")
	})
}

// BenchmarkFig4bTimingFailures regenerates the Figure 4b series; the
// reported custom metric "failureProb" is the figure's y-axis.
func BenchmarkFig4bTimingFailures(b *testing.B) {
	benchFig4(b, func(b *testing.B, r experiment.Fig4Result) {
		b.ReportMetric(r.FailureProb, "failureProb")
	})
}

func benchFig4(b *testing.B, report func(*testing.B, experiment.Fig4Result)) {
	configs := []struct {
		prob float64
		lui  time.Duration
	}{
		{0.9, 4 * time.Second},
		{0.5, 4 * time.Second},
		{0.9, 2 * time.Second},
		{0.5, 2 * time.Second},
	}
	deadlines := []time.Duration{80 * time.Millisecond, 140 * time.Millisecond, 220 * time.Millisecond}
	for _, cfg := range configs {
		for _, d := range deadlines {
			name := fmt.Sprintf("prob=%.1f/lui=%ds/deadline=%dms",
				cfg.prob, int(cfg.lui/time.Second), d/time.Millisecond)
			b.Run(name, func(b *testing.B) {
				var last experiment.Fig4Result
				for i := 0; i < b.N; i++ {
					last = experiment.RunFig4Point(experiment.Fig4Config{
						Seed:     2002 + int64(i),
						Deadline: d,
						MinProb:  cfg.prob,
						LUI:      cfg.lui,
						Requests: benchRequests,
					})
				}
				report(b, last)
			})
		}
	}
}

// BenchmarkAblationSelectors compares Algorithm 1 with the baseline
// selectors at the middle of the Figure 4 operating range.
func BenchmarkAblationSelectors(b *testing.B) {
	for _, sel := range []selection.Selector{
		selection.Algorithm1{},
		selection.Stateless{},
		selection.All{},
		selection.Single{},
		selection.CDFGreedy{},
	} {
		b.Run(sel.Name(), func(b *testing.B) {
			var last experiment.Fig4Result
			for i := 0; i < b.N; i++ {
				last = experiment.RunFig4Point(experiment.Fig4Config{
					Seed:     77 + int64(i),
					Deadline: 140 * time.Millisecond,
					MinProb:  0.9,
					LUI:      2 * time.Second,
					Requests: benchRequests,
					Selector: sel,
				})
			}
			b.ReportMetric(last.FailureProb, "failureProb")
			b.ReportMetric(last.AvgSelected, "replicas/read")
		})
	}
}

// BenchmarkAblationFailover measures QoS under mid-run crashes of a serving
// primary, the sequencer, and the lazy publisher.
func BenchmarkAblationFailover(b *testing.B) {
	for _, crash := range []string{"none", "p01", "sequencer", "publisher"} {
		b.Run("crash="+crash, func(b *testing.B) {
			var last experiment.Fig4Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.Fig4Config{
					Seed:     13 + int64(i),
					Deadline: 140 * time.Millisecond,
					MinProb:  0.9,
					LUI:      2 * time.Second,
					Requests: benchRequests,
				}
				if crash != "none" {
					cfg.Crash = crash
					cfg.CrashAt = 30 * time.Second
				}
				last = experiment.RunFig4Point(cfg)
			}
			b.ReportMetric(last.FailureProb, "failureProb")
			if !last.Done {
				b.Fatalf("workload stalled under crash=%s", crash)
			}
		})
	}
}

// BenchmarkEvaluateSteadyState measures repeated model evaluation against an
// unchanging repository — the cache-hit path a read takes when it arrives
// between performance broadcasts, which Figure 3 (always re-deriving the
// distributions) does not isolate. The allocs/op column is the contract:
// the steady-state hot path must not allocate.
func BenchmarkEvaluateSteadyState(b *testing.B) {
	for _, replicas := range []int{8, 16} {
		b.Run(fmt.Sprintf("replicas=%d/window=20", replicas), func(b *testing.B) {
			rng := seededRand(42)
			now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
			repo := repository.New(20)
			prim, sec := experiment.SeedRepository(repo, replicas, 20, rng, now)
			model := selection.Model{BinWidth: 2 * time.Millisecond, LazyInterval: 4 * time.Second}
			spec := qos.Spec{Staleness: 2, Deadline: 150 * time.Millisecond, MinProb: 0.9}

			var in selection.Input
			model.EvaluateInto(&in, repo, prim, sec, "seq", spec, now) // warm caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.EvaluateInto(&in, repo, prim, sec, "seq", spec, now)
			}
		})
	}
}

// ---- Substrate micro-benchmarks (beyond the paper's figures) ----

// BenchmarkPMFConvolve measures the discrete convolution at the heart of the
// response-time model (Section 5.2), per window size.
func BenchmarkPMFConvolve(b *testing.B) {
	for _, window := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			rng := seededRand(1)
			mk := func() stats.PMF {
				samples := make([]time.Duration, window)
				for i := range samples {
					samples[i] = time.Duration(rng.Intn(200)) * time.Millisecond
				}
				return stats.FromSamples(samples)
			}
			s, w := mk(), mk()
			g := stats.Point(2 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.Convolve(w).Bin(2 * time.Millisecond).Convolve(g)
				_ = p.CDF(140 * time.Millisecond)
			}
		})
	}
}

// wireBenchFrame is the representative hot frame of the live deployment: a
// client request wrapped by the group substrate's sequenced link layer.
func wireBenchFrame() (node.ID, node.ID, node.Message) {
	return "c00", "p01", group.DataMsg{
		SrcEpoch: 0xfeedface, Gen: 1, Seq: 12345,
		Payload: consistency.Request{
			ID:      consistency.RequestID{Client: "c00", Seq: 12345},
			Method:  "Set",
			Payload: []byte("user:4711=profile-blob-0123456789abcdef"),
		},
	}
}

// BenchmarkWireCodec compares the hand-rolled binary wire codec against the
// gob stream it replaced, on the transport's hot frame. The encode variant
// is the steady-state writer path (reused buffer, zero allocs); the
// roundtrip variants add the decode side as the read loop performs it.
func BenchmarkWireCodec(b *testing.B) {
	tcpnet.RegisterProtocolTypes()
	from, to, msg := wireBenchFrame()

	b.Run("wire/encode", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = tcpnet.AppendFrame(buf[:0], from, to, msg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("wire/roundtrip", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		var dec tcpnet.FrameDecoder // persistent, as in the read loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = tcpnet.AppendFrame(buf[:0], from, to, msg)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, _, err := dec.Decode(buf[4:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/roundtrip", func(b *testing.B) {
		// Persistent encoder/decoder over one buffer — the streaming setup
		// the old transport used, which amortizes gob's type descriptors.
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(tcpnet.Frame{From: from, To: to, Payload: msg}); err != nil {
				b.Fatal(err)
			}
			var f tcpnet.Frame
			if err := dec.Decode(&f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPThroughput pushes the hot frame through real loopback TCP,
// two runtimes per variant, and reports ns per delivered frame (frames/sec
// = 1e9/ns_per_op; scripts/bench.sh derives it into BENCH_wire.json).
//
//	wire — the live Transport: binary codec, per-peer writer goroutine,
//	       batched flushes.
//	gob  — the replaced design, reproduced inline: per-frame gob.Encode
//	       straight onto the connection, gob decode loop on the receiver.
//
// On the single-core benchmark container compare frames/sec and allocs/op;
// ns/op is indicative only.
func BenchmarkTCPThroughput(b *testing.B) {
	tcpnet.RegisterProtocolTypes()
	from, to, msg := wireBenchFrame()

	// Receiver-side terminal node shared by both variants: counts
	// deliveries and wakes the sender every 256 frames so backpressure
	// blocks on a channel instead of busy-yielding (which would burn the
	// whole benchmark container's single core in the scheduler).
	newSink := func() (*atomic.Int64, chan struct{}, node.Node) {
		got := new(atomic.Int64)
		wake := make(chan struct{}, 1)
		return got, wake, &node.FuncNode{
			OnRecv: func(node.ID, node.Message) {
				if got.Add(1)&255 == 0 {
					select {
					case wake <- struct{}{}:
					default:
					}
				}
			},
		}
	}
	drain := func(got *atomic.Int64, n int64) {
		for got.Load() < n {
			runtime.Gosched()
		}
	}

	b.Run("wire", func(b *testing.B) {
		rtB := live.NewRuntime()
		got, wake, sink := newSink()
		rtB.Register(to, sink)
		rtB.Start()
		defer rtB.Stop()
		trB, err := tcpnet.New(rtB, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer trB.Close()
		trA, err := tcpnet.New(live.NewRuntime(), "127.0.0.1:0", map[node.ID]string{to: trB.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer trA.Close()

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Backpressure well inside the ring capacity so no frame is
			// shed: the bench measures throughput, not the drop path.
			for int64(i)-got.Load() >= tcpnet.DefaultSendQueue/2 {
				<-wake
			}
			trA.Send(from, to, msg)
		}
		drain(got, int64(b.N))
	})

	b.Run("gob", func(b *testing.B) {
		rtB := live.NewRuntime()
		got, _, sink := newSink()
		rtB.Register(to, sink)
		rtB.Start()
		defer rtB.Stop()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			for {
				var f tcpnet.Frame
				if err := dec.Decode(&f); err != nil {
					return
				}
				rtB.Inject(f.From, f.To, f.Payload)
			}
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		enc := gob.NewEncoder(conn)

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One Encode per frame onto the socket — the old transport's
			// per-Send write (TCP itself applies the backpressure).
			if err := enc.Encode(tcpnet.Frame{From: from, To: to, Payload: msg}); err != nil {
				b.Fatal(err)
			}
		}
		drain(got, int64(b.N))
	})
}

// BenchmarkCommitBuffer measures the primary's commit-in-GSN-order pipeline
// under in-order and reversed arrival.
func BenchmarkCommitBuffer(b *testing.B) {
	const batch = 64
	b.Run("in-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cb := consistency.NewCommitBuffer()
			for g := uint64(1); g <= batch; g++ {
				id := consistency.RequestID{Client: "c", Seq: g}
				cb.AddBody(consistency.Request{ID: id})
				cb.AddAssign(consistency.GSNAssign{ID: id, GSN: g, Update: true})
			}
			if cb.MyCSN() != batch {
				b.Fatal("commit stream incomplete")
			}
		}
	})
	b.Run("reversed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cb := consistency.NewCommitBuffer()
			for g := uint64(batch); g >= 1; g-- {
				id := consistency.RequestID{Client: "c", Seq: g}
				cb.AddBody(consistency.Request{ID: id})
				cb.AddAssign(consistency.GSNAssign{ID: id, GSN: g, Update: true})
			}
			if cb.MyCSN() != batch {
				b.Fatal("commit stream incomplete")
			}
		}
	})
}

// BenchmarkSimulator measures raw discrete-event throughput — the budget
// every virtual-time experiment draws on.
func BenchmarkSimulator(b *testing.B) {
	s := sim.NewScheduler(1)
	cnt := 0
	var tick func()
	tick = func() {
		cnt++
		if cnt < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(time.Microsecond, tick)
	b.ResetTimer()
	s.RunUntilIdle()
	if cnt != b.N {
		b.Fatalf("ran %d events, want %d", cnt, b.N)
	}
}

// BenchmarkSimMessagePassing measures one virtual network hop through the
// runtime (send, delay model, delivery).
func BenchmarkSimMessagePassing(b *testing.B) {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	type pingMsg struct{ N int }
	var actx, bGot = node.Context(nil), 0
	rt.Register("a", &node.FuncNode{OnInit: func(ctx node.Context) { actx = ctx }})
	rt.Register("b", &node.FuncNode{OnRecv: func(node.ID, node.Message) { bGot++ }})
	rt.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actx.Send("b", pingMsg{N: i})
	}
	s.RunUntilIdle()
	if bGot != b.N {
		b.Fatalf("delivered %d of %d", bGot, b.N)
	}
}

// BenchmarkSelectionAlgorithm1 isolates Algorithm 1 itself (the paper
// attributes ~10% of Figure 3's overhead to it).
func BenchmarkSelectionAlgorithm1(b *testing.B) {
	rng := seededRand(3)
	in := selection.Input{StaleFactor: 0.7, MinProb: 0.9, Sequencer: "seq"}
	for i := 0; i < 10; i++ {
		in.Candidates = append(in.Candidates, selection.Candidate{
			ID:         node.ID(fmt.Sprintf("r%02d", i)),
			Primary:    i < 4,
			ImmedCDF:   rng.Float64(),
			DelayedCDF: rng.Float64() * 0.3,
			ERT:        time.Duration(rng.Intn(10000)) * time.Millisecond,
		})
	}
	sel := selection.Algorithm1{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(in)
	}
}

// BenchmarkEndToEndSimRead measures one full client read through the entire
// simulated stack (selection, sequencing, service, reply, broadcasts).
func BenchmarkEndToEndSimRead(b *testing.B) {
	r := experiment.RunFig4Point(experiment.Fig4Config{
		Seed:         1,
		Deadline:     140 * time.Millisecond,
		MinProb:      0.9,
		LUI:          2 * time.Second,
		Requests:     b.N*2 + 2, // half are reads
		RequestDelay: 10 * time.Millisecond,
	})
	if r.Reads < b.N {
		b.Fatalf("ran %d reads, want >= %d", r.Reads, b.N)
	}
}

// BenchmarkFig4Point is the allocation contract for the simulator's hot
// path: one full 200-request experiment per iteration, with allocs/op
// reported. The free-listed scheduler events, pooled delivery/timer records,
// and scratch-slice reuse in the protocol stack are all on this path.
func BenchmarkFig4Point(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.RunFig4Point(experiment.Fig4Config{
			Seed:     2002,
			Deadline: 140 * time.Millisecond,
			MinProb:  0.9,
			LUI:      2 * time.Second,
			Requests: benchRequests,
		})
	}
}

// BenchmarkFig4PointObs is BenchmarkFig4Point with a live metrics registry
// attached to every gateway plus the simulator — the observability
// subsystem's overhead budget. Compare ns/op against BenchmarkFig4Point
// (scripts/bench.sh emits the ratio into BENCH_obs.json; the contract is
// ≤5% overhead with metrics enabled, zero added allocs when disabled).
func BenchmarkFig4PointObs(b *testing.B) {
	reg := obs.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.RunFig4Point(experiment.Fig4Config{
			Seed:     2002,
			Deadline: 140 * time.Millisecond,
			MinProb:  0.9,
			LUI:      2 * time.Second,
			Requests: benchRequests,
			Obs:      reg,
		})
	}
}

// BenchmarkSweepWallClock measures a reduced Figure 4 sweep end to end
// through the parallel experiment engine, sequentially and at GOMAXPROCS.
// The parallel/sequential ratio approaches the core count on multi-core
// machines (points are share-nothing); the outputs are identical either way
// (see TestFig4SweepParallelismInvariant).
func BenchmarkSweepWallClock(b *testing.B) {
	sweep := func(parallel int) {
		sw := experiment.DefaultFig4Sweep()
		sw.Base = experiment.Fig4Config{Seed: 2002, Requests: 50}
		sw.Deadlines = sw.Deadlines[:4] // 4 deadlines x 4 (prob, lui) series = 16 points
		var cfgs []experiment.Fig4Config
		for _, d := range sw.Deadlines {
			for _, c := range sw.Configs {
				p := sw.Base
				p.Deadline = d
				p.MinProb = c.MinProb
				p.LUI = c.LUI
				p.Seed = sw.Base.Seed + int64(d/time.Millisecond)
				cfgs = append(cfgs, p)
			}
		}
		experiment.RunPoints(cfgs, parallel, nil, experiment.RunFig4Point)
	}
	b.Run("parallel=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(1)
		}
	})
	b.Run("parallel=gomaxprocs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(0)
		}
	})
}
